//! Exact branch-and-bound solver over task start times.
//!
//! Substitutes the paper's Gurobi runs (see DESIGN.md, Substitution 1).
//! The search assigns start times to `Gc` nodes in topological order.
//! For a node `v` the candidate starts are the integers in
//! `[max placed-preds finish, LST(v)]` (the static LST w.r.t. the
//! deadline is a valid upper bound because all successors must still
//! fit). Soundness of the bound: working power is additive, so the cost
//! of a *partial* schedule is monotone non-decreasing in placements —
//! the cost of the placed prefix is an admissible lower bound on every
//! completion, and branches with `lb >= best` are pruned.
//!
//! Candidate placements are priced through the incremental
//! [`CostEngine`] placement API (`place_delta` / `apply_place`), never
//! by re-evaluating the whole schedule: with the interval-sparse
//! backend one candidate costs `O(log N + breakpoints touched)`
//! regardless of how long the task or the horizon is. The solver can be
//! seeded with a heuristic schedule as the incumbent; candidate starts
//! are explored in increasing order of their immediate cost
//! contribution to reach good incumbents quickly.
//!
//! By default ([`CandidateMode::Auto`]) the branching factor on
//! single-chain instances is cut from `O(T)` integer starts to the
//! `O(n·J)` boundary-aligned candidate set of Appendix A.2 — lossless
//! by Lemma 4.2, so the optimality claim stands. Full enumeration
//! remains available ([`CandidateMode::Full`]) as the differential-
//! testing opt-in, and the unproven multi-unit restriction
//! ([`CandidateMode::Boundary`]) demotes its result to *feasible*.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rayon::prelude::*;

use cawo_core::{
    Bounds, Cost, CostEngine, DenseGrid, EngineKind, FenwickEngine, Instance, IntervalEngine,
    Schedule,
};
use cawo_graph::NodeId;
use cawo_platform::{PowerProfile, Time};

use crate::solver::{
    require_feasible, warm_incumbent, Budget, SolveError, SolveResult, SolveStats, SolveStatus,
    Solver, WarmStart,
};

/// Which start times a node may branch over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateMode {
    /// Boundary-aligned candidates where that is provably lossless
    /// (single-chain instances, via the Appendix A.2 candidate set of
    /// Lemma 4.2 — `O(n·J)` distinct starts per node instead of
    /// `O(T)`); full enumeration elsewhere. The default.
    #[default]
    Auto,
    /// Every integer start in `[EST, LST]` — the differential-testing
    /// opt-in (and the only provably exact set on multi-unit
    /// instances).
    Full,
    /// Boundary-aligned candidates everywhere. On single-chain
    /// instances this equals `Auto`; on multi-unit instances the
    /// restriction has no losslessness proof, so an exhausted search is
    /// reported as *feasible*, never optimal.
    Boundary,
}

/// Solver configuration.
#[derive(Debug, Clone, Default)]
pub struct BnbConfig {
    /// Node/time budget (the incumbent is still returned when the
    /// budget runs out, flagged non-optimal).
    pub budget: Budget,
    /// Warm-start incumbent (e.g. the best heuristic schedule).
    pub incumbent: Option<Schedule>,
    /// Candidate-start restriction (see [`CandidateMode`]).
    pub candidates: CandidateMode,
    /// Explore the tree on the current `cawo_par` pool (a no-op on a
    /// 1-thread pool). The optimum cost, exhaustion status and proven
    /// bound are unaffected; node counts and equal-cost schedule ties
    /// can vary run-to-run at >1 thread (see docs/CONCURRENCY.md).
    /// Defaults to `false` so plain `solve_exact` calls stay bit-for-bit
    /// reproducible, node counts included.
    pub parallel: bool,
}

impl BnbConfig {
    /// Budget of `node_limit` search nodes, no time limit, no incumbent.
    pub fn with_node_limit(node_limit: u64) -> Self {
        BnbConfig {
            budget: Budget::nodes(node_limit),
            ..BnbConfig::default()
        }
    }
}

/// Solver outcome.
#[derive(Debug, Clone)]
pub struct BnbResult {
    /// Best cost found.
    pub cost: Cost,
    /// Schedule achieving it.
    pub schedule: Schedule,
    /// Whether the result is proven optimal (search space exhausted
    /// *and* the candidate restriction is lossless on this instance).
    pub optimal: bool,
    /// Whether the (possibly restricted) search space was exhausted.
    pub exhausted: bool,
    /// Explored search nodes.
    pub nodes: u64,
}

/// Search-wide state every worker reads and writes: the incumbent
/// bound behind the pruning tests, the node counter, and the budget
/// latch. A single-threaded search goes through the same fields — with
/// one thread the atomics degenerate to plain loads/stores, so the
/// sequential path costs (and counts) exactly what it did before.
struct SharedSearch {
    /// Best completion cost seen so far. Only ever lowered (via
    /// `fetch_min`), so the bound is monotone non-increasing — the
    /// property that keeps pruning admissible under concurrent updates.
    best: AtomicI64,
    nodes: AtomicU64,
    node_limit: u64,
    deadline: Option<Instant>,
    /// Latched once the budget is exhausted so every later poll
    /// short-circuits without reading the clock.
    stop: AtomicBool,
}

impl SharedSearch {
    fn best_bound(&self) -> i64 {
        self.best.load(Ordering::SeqCst)
    }

    /// Entry-time budget poll. Polled every node: a single node
    /// enumerates up to O(T) candidate placements (milliseconds at long
    /// horizons), so any coarser polling would let the wall-clock cap
    /// overshoot by orders of magnitude; against that, one clock read
    /// per node is noise. Runs without a time limit never touch the
    /// clock.
    fn budget_exceeded(&self) -> bool {
        if self.stop.load(Ordering::Relaxed) {
            return true;
        }
        if self.nodes.load(Ordering::Relaxed) >= self.node_limit {
            self.stop.store(true, Ordering::Relaxed);
            return true;
        }
        if let Some(d) = self.deadline {
            // cawo-lint: allow(wall-clock) — enforcing the opt-in time budget.
            if Instant::now() >= d {
                self.stop.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Post-child truncation check (cheap: no clock).
    fn should_stop(&self) -> bool {
        self.stop.load(Ordering::Relaxed) || self.nodes.load(Ordering::Relaxed) >= self.node_limit
    }
}

/// Per-worker search state: the cost engine and prefix are private to
/// the worker; bound/budget live in [`SharedSearch`].
struct SearchState<'a, E: CostEngine> {
    inst: &'a Instance,
    /// Static LST per node (deadline-based).
    lst: &'a [Time],
    /// Per-node sorted candidate starts (None = full enumeration).
    cand_starts: Option<&'a [Vec<Time>]>,
    shared: &'a SharedSearch,
    /// Incremental cost engine tracking the *placed* tasks only.
    engine: E,
    /// Cost of the placed prefix (admissible lower bound).
    prefix_cost: i64,
    /// Start times chosen so far (indexed by node).
    start: Vec<Time>,
    /// Finish time of each placed node (u64::MAX = unplaced).
    finish: Vec<Time>,
    /// Completions that improved the shared bound as they were found;
    /// chronologically last wins within a worker. Workers' records are
    /// merged in deterministic unit order afterwards.
    record: Option<(i64, Vec<Time>)>,
    exhausted: bool,
}

impl<'a, E: CostEngine> SearchState<'a, E> {
    /// Candidates ordered by immediate cost contribution (cheapest
    /// first), ties by earliest start. Pure in the prefix: independent
    /// of the shared bound, so sequential and parallel runs price and
    /// order candidates identically.
    fn candidates(&self, v: NodeId, est: Time, lst: Time, len: Time, w: i64) -> Vec<(i64, Time)> {
        let mut cands: Vec<(i64, Time)> = match self.cand_starts {
            None => (est..=lst)
                .map(|s| (self.engine.place_delta(s, len, w), s))
                .collect(),
            Some(sets) => {
                let set = &sets[v as usize];
                let from = set.partition_point(|&s| s < est);
                let to = set.partition_point(|&s| s <= lst);
                let mut out: Vec<(i64, Time)> = set[from..to]
                    .iter()
                    .map(|&s| (self.engine.place_delta(s, len, w), s))
                    .collect();
                // The pressed-left start is always a candidate: it keeps
                // the restricted tree able to complete any prefix.
                if set[from..to].binary_search(&est).is_err() {
                    out.push((self.engine.place_delta(est, len, w), est));
                }
                out
            }
        };
        cands.sort_unstable();
        cands
    }

    fn place(&mut self, v: NodeId, s: Time, len: Time, w: i64, delta: i64) {
        self.engine.apply_place(s, len, w);
        self.prefix_cost += delta;
        self.start[v as usize] = s;
        self.finish[v as usize] = s + len;
    }

    fn unplace(&mut self, v: NodeId, s: Time, len: Time, w: i64, delta: i64) {
        self.finish[v as usize] = Time::MAX;
        self.prefix_cost -= delta;
        self.engine.apply_place(s, len, -w);
    }

    /// Earliest start permitted by the placed predecessors.
    fn est(&self, v: NodeId) -> Time {
        self.inst
            .dag()
            .predecessors(v)
            .iter()
            .map(|&u| {
                debug_assert_ne!(self.finish[u as usize], Time::MAX, "topological order");
                self.finish[u as usize]
            })
            .max()
            .unwrap_or(0)
    }

    fn dfs(&mut self, order: &[NodeId], depth: usize) {
        self.shared.nodes.fetch_add(1, Ordering::Relaxed);
        if self.shared.budget_exceeded() {
            self.exhausted = false;
            return;
        }
        if depth == order.len() {
            let prev = self
                .shared
                .best
                .fetch_min(self.prefix_cost, Ordering::SeqCst);
            if self.prefix_cost < prev {
                self.record = Some((self.prefix_cost, self.start.clone()));
                cawo_obs::inc(cawo_obs::Ctr::BnbIncumbents);
                cawo_obs::sample("bnb", "incumbent", self.prefix_cost as f64);
            }
            return;
        }
        let v = order[depth];
        let len = self.inst.exec(v);
        let w = self.inst.work_power(v) as i64;
        let est = self.est(v);
        let lst = self.lst[v as usize];
        if est > lst {
            return; // placed predecessors already overflow the deadline
        }
        let cands = self.candidates(v, est, lst, len, w);
        for (i, &(delta, s)) in cands.iter().enumerate() {
            if self.prefix_cost + delta >= self.shared.best_bound() {
                // `delta` is sorted ascending, but later candidates can
                // only match or exceed it — stop this branch.
                cawo_obs::inc(cawo_obs::Ctr::BnbPruned);
                break;
            }
            self.place(v, s, len, w, delta);
            self.dfs(order, depth + 1);
            self.unplace(v, s, len, w, delta);
            if self.shared.should_stop() {
                if i + 1 < cands.len() {
                    // Truncated with candidates still unexplored.
                    self.exhausted = false;
                }
                return;
            }
        }
    }
}

/// A chunk of the search tree executable independently of every other
/// unit: either a contiguous slice of one expanded node's candidate
/// list, or a completed assignment discovered while expanding.
enum Unit<E> {
    Complete {
        cost: i64,
        start: Vec<Time>,
    },
    Slice {
        snap: Arc<Snapshot<E>>,
        cands: Arc<Vec<(i64, Time)>>,
        lo: usize,
        hi: usize,
    },
}

/// Frozen prefix state of one expanded node, shared by its slices.
/// Workers clone the engine out of it — every [`CostEngine`] backend
/// owns its data, which is what makes per-worker clones possible.
struct Snapshot<E> {
    engine: E,
    prefix_cost: i64,
    start: Vec<Time>,
    finish: Vec<Time>,
    depth: usize,
}

impl<'a, E: CostEngine + Clone> SearchState<'a, E> {
    /// Expands the leftmost spine of the tree into independently
    /// executable [`Unit`]s, emitted in exact DFS order.
    ///
    /// This mirrors `dfs` entry semantics step for step — node
    /// counting, budget polling, dead prefixes, candidate pricing — and
    /// prunes only against the *incumbent*: no completion is recorded
    /// during expansion (completions become deferred `Complete` units),
    /// so the shared bound still equals the incumbent everywhere the
    /// spine looks at it, exactly as a sequential DFS would have seen
    /// on its leftmost descent. Executing the units in order on one
    /// thread therefore replays the sequential search bit for bit.
    fn decompose(
        &mut self,
        order: &[NodeId],
        depth: usize,
        target: usize,
        slices: usize,
        units: &mut Vec<Unit<E>>,
    ) {
        self.shared.nodes.fetch_add(1, Ordering::Relaxed);
        if self.shared.budget_exceeded() {
            self.exhausted = false;
            return;
        }
        if depth == order.len() {
            units.push(Unit::Complete {
                cost: self.prefix_cost,
                start: self.start.clone(),
            });
            return;
        }
        let v = order[depth];
        let len = self.inst.exec(v);
        let w = self.inst.work_power(v) as i64;
        let est = self.est(v);
        let lst = self.lst[v as usize];
        if est > lst {
            return;
        }
        let cands = self.candidates(v, est, lst, len, w);
        if self.prefix_cost + cands[0].0 >= self.shared.best_bound() {
            // The cheapest candidate already prices out: the whole
            // candidate loop would break immediately.
            return;
        }
        if cands.len() + units.len() >= target {
            // Wide enough here: slice this node's whole candidate list.
            self.push_slices(cands, 0, slices, depth, units);
        } else {
            // Narrow node: descend into the cheapest candidate (its
            // subtree units come first, preserving DFS order), then
            // emit the remaining candidates as slices.
            let (delta, s) = cands[0];
            self.place(v, s, len, w, delta);
            self.decompose(order, depth + 1, target, slices, units);
            self.unplace(v, s, len, w, delta);
            if self.shared.should_stop() {
                if cands.len() > 1 {
                    self.exhausted = false;
                }
                return;
            }
            if cands.len() > 1 {
                self.push_slices(cands, 1, slices, depth, units);
            }
        }
    }

    /// Splits `cands[from..]` of the node at `depth` into up to
    /// `slices` contiguous [`Unit::Slice`]s over one shared snapshot.
    fn push_slices(
        &self,
        cands: Vec<(i64, Time)>,
        from: usize,
        slices: usize,
        depth: usize,
        units: &mut Vec<Unit<E>>,
    ) {
        let snap = Arc::new(Snapshot {
            engine: self.engine.clone(),
            prefix_cost: self.prefix_cost,
            start: self.start.clone(),
            finish: self.finish.clone(),
            depth,
        });
        let n = cands.len() - from;
        let per = n.div_ceil(slices.min(n).max(1)).max(1);
        let cands = Arc::new(cands);
        let mut lo = from;
        while lo < cands.len() {
            let hi = (lo + per).min(cands.len());
            units.push(Unit::Slice {
                snap: snap.clone(),
                cands: cands.clone(),
                lo,
                hi,
            });
            lo = hi;
        }
    }
}

/// Units each pool thread gets on average (spine cut-off).
const TARGET_UNITS_PER_THREAD: usize = 2;
/// Slices a wide node is cut into, per pool thread (load balancing
/// against skewed subtrees).
const SLICES_PER_THREAD: usize = 4;

/// Runs one unit to completion against the shared bound; returns the
/// unit's best record and whether its subtree was fully explored.
#[allow(clippy::too_many_arguments)]
fn execute_unit<E: CostEngine + Clone>(
    unit: Unit<E>,
    inst: &Instance,
    lst: &[Time],
    cand_starts: Option<&[Vec<Time>]>,
    shared: &SharedSearch,
    order: &[NodeId],
) -> (Option<(i64, Vec<Time>)>, bool) {
    match unit {
        Unit::Complete { cost, start } => {
            let prev = shared.best.fetch_min(cost, Ordering::SeqCst);
            if cost < prev {
                cawo_obs::inc(cawo_obs::Ctr::BnbIncumbents);
                cawo_obs::sample("bnb", "incumbent", cost as f64);
            }
            ((cost < prev).then_some((cost, start)), true)
        }
        Unit::Slice {
            snap,
            cands,
            lo,
            hi,
        } => {
            if shared.stop.load(Ordering::Relaxed) {
                return (None, false);
            }
            let mut st = SearchState {
                inst,
                lst,
                cand_starts,
                shared,
                engine: snap.engine.clone(),
                prefix_cost: snap.prefix_cost,
                start: snap.start.clone(),
                finish: snap.finish.clone(),
                record: None,
                exhausted: true,
            };
            let v = order[snap.depth];
            let len = inst.exec(v);
            let w = inst.work_power(v) as i64;
            for i in lo..hi {
                let (delta, s) = cands[i];
                // The sequential `break` becomes a per-candidate skip:
                // deltas ascend and the shared bound is monotone
                // non-increasing, so once one candidate prices out every
                // later one does too — skipping each is equivalent.
                if st.prefix_cost + delta >= shared.best_bound() {
                    continue;
                }
                st.place(v, s, len, w, delta);
                st.dfs(order, snap.depth + 1);
                st.unplace(v, s, len, w, delta);
                if shared.should_stop() {
                    if i + 1 < hi {
                        st.exhausted = false;
                    }
                    break;
                }
            }
            (st.record, st.exhausted)
        }
    }
}

/// Solves an instance to optimality (subject to `config.budget`) on the
/// default (interval-sparse) cost engine.
///
/// Panics if the deadline is below the ASAP makespan.
pub fn solve_exact(inst: &Instance, profile: &PowerProfile, config: BnbConfig) -> BnbResult {
    solve_exact_on::<IntervalEngine>(inst, profile, config)
}

/// Solves an instance to optimality on an explicit cost-engine backend.
/// All backends price placements exactly, so they return the same
/// optimum; they differ only in speed.
///
/// With `config.parallel` set and a multi-thread `cawo_par` pool
/// current, the tree is decomposed along its leftmost spine and the
/// resulting subtree units run on the pool against a shared atomic
/// bound; per-unit best schedules are then merged in deterministic unit
/// order (see docs/CONCURRENCY.md for exactly what that pins down).
///
/// Panics if the deadline is below the ASAP makespan.
pub fn solve_exact_on<E: CostEngine + Clone + Send + Sync>(
    inst: &Instance,
    profile: &PowerProfile,
    config: BnbConfig,
) -> BnbResult {
    let horizon = profile.deadline();
    let bounds = Bounds::new(inst, horizon);
    assert!(bounds.is_feasible(inst), "deadline below ASAP makespan");

    let n = inst.node_count();
    let lst: Vec<Time> = (0..n as NodeId).map(|v| bounds.lst(v)).collect();

    // Candidate-start restriction. On a single chain the Appendix A.2
    // candidate set is provably lossless (Lemma 4.2), so `Auto` applies
    // it and keeps the optimality claim; the unproven multi-unit
    // restriction only runs when explicitly opted into via `Boundary`,
    // and then renounces the claim.
    let chain = crate::solver::single_chain(inst).ok();
    let (cand_starts, lossless) = match (config.candidates, &chain) {
        (CandidateMode::Full, _) => (None, true),
        (CandidateMode::Auto, None) => (None, true),
        (_, Some((order, _))) => {
            let ends = crate::dp::candidate_end_times(order, inst, profile);
            let mut sets: Vec<Vec<Time>> = vec![Vec::new(); n];
            for (i, &v) in order.iter().enumerate() {
                sets[v as usize] = ends[i].iter().map(|&e| e - inst.exec(v)).collect();
            }
            (Some(sets), true)
        }
        (CandidateMode::Boundary, None) => {
            let mut sets: Vec<Vec<Time>> = vec![Vec::new(); n];
            for (v, set) in sets.iter_mut().enumerate() {
                let w = inst.exec(v as NodeId);
                let mut s: Vec<Time> = profile
                    .boundaries()
                    .iter()
                    .flat_map(|&b| [Some(b), b.checked_sub(w)])
                    .flatten()
                    .filter(|&t| t + w <= horizon)
                    .collect();
                s.push(bounds.lst(v as NodeId));
                s.sort_unstable();
                s.dedup();
                *set = s;
            }
            (Some(sets), false)
        }
    };

    // Incumbent: provided schedule or ASAP, priced through the engine.
    let incumbent = config.incumbent.unwrap_or_else(|| inst.asap_schedule());
    incumbent
        .validate(inst, horizon)
        // cawo-lint: allow(panic-path) — documented contract on
        // `BnbConfig::incumbent`; accepting an invalid incumbent would
        // silently report a wrong optimum, so it must fail loudly.
        .expect("incumbent must be valid for the deadline");
    let incumbent_cost = E::build(inst, &incumbent, profile).total_cost() as i64;

    // The search engine tracks placed tasks only: build it over the
    // ASAP schedule, then vacate every task. What remains is the
    // constant idle-overflow base cost.
    let asap = inst.asap_schedule();
    let mut engine = E::build(inst, &asap, profile);
    for v in 0..n as NodeId {
        let w = inst.work_power(v) as i64;
        engine.apply_place(asap.start(v), inst.exec(v), -w);
    }
    let base_cost = engine.total_cost() as i64;

    let shared = SharedSearch {
        best: AtomicI64::new(incumbent_cost),
        nodes: AtomicU64::new(0),
        node_limit: config.budget.node_limit,
        deadline: config.budget.deadline_from_now(),
        stop: AtomicBool::new(false),
    };
    let order = inst.topo_order().to_vec();
    let mut state = SearchState {
        inst,
        lst: &lst,
        cand_starts: cand_starts.as_deref(),
        shared: &shared,
        engine,
        prefix_cost: base_cost,
        start: vec![0; n],
        finish: vec![Time::MAX; n],
        record: None,
        exhausted: true,
    };

    let threads = rayon::current_num_threads();
    let (records, exhausted) = if config.parallel && threads > 1 {
        let mut units = Vec::new();
        state.decompose(
            &order,
            0,
            threads * TARGET_UNITS_PER_THREAD,
            threads * SLICES_PER_THREAD,
            &mut units,
        );
        let spine_exhausted = state.exhausted;
        // (best record found by the unit, whether it exhausted).
        type UnitOutcome = (Option<(i64, Vec<Time>)>, bool);
        let results: Vec<UnitOutcome> = units
            .into_par_iter()
            .map(|u| execute_unit(u, inst, &lst, cand_starts.as_deref(), &shared, &order))
            .collect();
        let exhausted = spine_exhausted && results.iter().all(|&(_, e)| e);
        let records: Vec<(i64, Vec<Time>)> = results.into_iter().filter_map(|(r, _)| r).collect();
        (records, exhausted)
    } else {
        state.dfs(&order, 0);
        (state.record.into_iter().collect(), state.exhausted)
    };

    // Deterministic reduction: fold the per-unit records in unit order,
    // strict improvement only. On one thread this reproduces the
    // sequential "chronologically last improvement wins" rule exactly;
    // at any thread count the folded cost is the true optimum of the
    // explored space, because the globally best completion always
    // passes its `fetch_min` and is recorded by whichever unit found
    // it.
    let mut best_cost = incumbent_cost;
    let mut best_start = incumbent.starts().to_vec();
    for (c, s) in records {
        if c < best_cost {
            best_cost = c;
            best_start = s;
        }
    }

    let schedule = Schedule::new(best_start);
    debug_assert!(schedule.validate(inst, horizon).is_ok());
    debug_assert_eq!(
        best_cost as Cost,
        cawo_core::carbon_cost(inst, &schedule, profile),
        "engine-priced optimum disagrees with the cost oracle"
    );
    cawo_obs::add(
        cawo_obs::Ctr::BnbNodes,
        shared.nodes.load(Ordering::Relaxed),
    );
    BnbResult {
        cost: best_cost as Cost,
        schedule,
        optimal: exhausted && lossless,
        exhausted,
        nodes: shared.nodes.load(Ordering::Relaxed),
    }
}

/// The branch-and-bound method as a [`Solver`]: optimal on any
/// instance, subject to the budget (with [`CandidateMode::Auto`]
/// pruning the branching factor to `O(n·J)` where that is provably
/// lossless).
#[derive(Debug, Clone, Copy)]
pub struct BnbSolver {
    /// Cost-engine backend pricing the placements.
    pub engine: EngineKind,
    /// Candidate-start restriction (default [`CandidateMode::Auto`]).
    pub candidates: CandidateMode,
    /// Parallel tree exploration on the current `cawo_par` pool (see
    /// [`BnbConfig::parallel`]); a no-op on a 1-thread pool. Defaults
    /// to `true`, so the solver-registry path — grid runs, the CLI —
    /// picks up pool parallelism automatically.
    pub parallel: bool,
}

impl Default for BnbSolver {
    fn default() -> Self {
        BnbSolver {
            engine: EngineKind::default(),
            candidates: CandidateMode::default(),
            parallel: true,
        }
    }
}

impl Solver for BnbSolver {
    fn name(&self) -> &'static str {
        "bnb"
    }

    fn solve(
        &self,
        inst: &Instance,
        profile: &PowerProfile,
        budget: Budget,
    ) -> Result<SolveResult, SolveError> {
        self.solve_inner(inst, profile, budget, &WarmStart::default())
    }

    fn solve_warm(
        &self,
        inst: &Instance,
        profile: &PowerProfile,
        budget: Budget,
        warm: &WarmStart,
    ) -> Result<SolveResult, SolveError> {
        self.solve_inner(inst, profile, budget, warm)
    }
}

impl BnbSolver {
    fn solve_inner(
        &self,
        inst: &Instance,
        profile: &PowerProfile,
        budget: Budget,
        warm: &WarmStart,
    ) -> Result<SolveResult, SolveError> {
        require_feasible(inst, profile)?;
        // A warm incumbent (cache hit on a related query) tightens the
        // initial upper bound, which is the main pruning lever of this
        // search; the LP basis hint does not apply to a combinatorial
        // method and is ignored.
        let (incumbent, _) = warm_incumbent(inst, profile, warm);
        let config = BnbConfig {
            budget,
            incumbent: Some(incumbent),
            candidates: self.candidates,
            parallel: self.parallel,
        };
        let res = match self.engine {
            EngineKind::Dense => solve_exact_on::<DenseGrid>(inst, profile, config),
            EngineKind::Interval => solve_exact_on::<IntervalEngine>(inst, profile, config),
            EngineKind::Fenwick => solve_exact_on::<FenwickEngine>(inst, profile, config),
        };
        let lower_bound = res.optimal.then_some(res.cost);
        Ok(SolveResult {
            schedule: res.schedule,
            cost: res.cost,
            status: if res.optimal {
                SolveStatus::Optimal
            } else if res.exhausted {
                // The restricted (unproven) search space was exhausted:
                // a valid schedule without an optimality proof.
                SolveStatus::Feasible
            } else {
                SolveStatus::TimedOut
            },
            nodes: res.nodes,
            lower_bound,
            stats: SolveStats::default(),
            basis: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cawo_core::enhanced::UnitInfo;
    use cawo_core::{carbon_cost, Variant};
    use cawo_graph::dag::DagBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn chain_instance(exec: Vec<Time>, p_idle: u64, p_work: u64) -> Instance {
        let n = exec.len();
        let mut b = DagBuilder::new(n);
        for i in 1..n {
            b.add_edge(i as u32 - 1, i as u32);
        }
        Instance::from_raw(
            b.build().unwrap(),
            exec,
            vec![0; n],
            vec![UnitInfo {
                p_idle,
                p_work,
                is_link: false,
            }],
            0,
        )
    }

    #[test]
    fn finds_zero_cost_when_it_exists() {
        let inst = chain_instance(vec![3], 0, 5);
        let profile = PowerProfile::from_parts(vec![0, 4, 8], vec![0, 5]);
        let res = solve_exact(&inst, &profile, BnbConfig::default());
        assert!(res.optimal);
        assert_eq!(res.cost, 0);
        assert!(res.schedule.start(0) >= 4);
    }

    #[test]
    fn matches_uniprocessor_dp() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..25 {
            let n = rng.gen_range(1..5);
            let exec: Vec<Time> = (0..n).map(|_| rng.gen_range(1..4)).collect();
            let total: Time = exec.iter().sum();
            let inst = chain_instance(exec, rng.gen_range(0..3), rng.gen_range(1..6));
            let horizon = total + rng.gen_range(1..=total + 3);
            let mid = rng.gen_range(1..horizon);
            let profile = PowerProfile::from_parts(
                vec![0, mid, horizon],
                vec![rng.gen_range(0..8), rng.gen_range(0..8)],
            );
            let dp = crate::dp::dp_polynomial(&inst, &profile);
            let bnb = solve_exact(&inst, &profile, BnbConfig::default());
            assert!(bnb.optimal, "trial {trial}");
            assert_eq!(bnb.cost, dp.cost, "trial {trial}");
        }
    }

    #[test]
    fn never_worse_than_any_heuristic() {
        use cawo_graph::generator::{generate, Family, GeneratorConfig};
        use cawo_heft::heft_schedule;
        use cawo_platform::{Cluster, DeadlineFactor, ProfileConfig, Scenario};
        let wf = generate(&GeneratorConfig::new(Family::Bacass, 10, 3));
        let cluster = Cluster::tiny(&[4, 5], 3);
        let mapping = heft_schedule(&wf, &cluster);
        let inst = cawo_core::Instance::build(&wf, &cluster, &mapping);
        let profile = ProfileConfig {
            scenario: Scenario::SolarMorning,
            deadline: DeadlineFactor::X15,
            seed: 3,
            intervals: 6,
            perturbation: 0.1,
        }
        .build(&cluster, inst.asap_makespan());
        // Seed with the best heuristic.
        let mut best: Option<Schedule> = None;
        let mut best_cost = Cost::MAX;
        for v in Variant::ALL {
            let s = v.run(&inst, &profile);
            let c = carbon_cost(&inst, &s, &profile);
            if c < best_cost {
                best_cost = c;
                best = Some(s);
            }
        }
        let res = solve_exact(
            &inst,
            &profile,
            BnbConfig {
                budget: Budget::nodes(5_000_000),
                incumbent: best,
                ..BnbConfig::default()
            },
        );
        assert!(res.cost <= best_cost);
        assert!(res.schedule.validate(&inst, profile.deadline()).is_ok());
        // The ILP checker accepts the exact solution and agrees on cost.
        let obj = crate::ilp::check_schedule_against_ilp(&inst, &profile, &res.schedule).unwrap();
        assert_eq!(obj, res.cost);
    }

    #[test]
    fn two_processors_interleave() {
        // Two independent tasks on two units; green budget only fits one
        // at a time. Optimal = serialize into the green window.
        let dag = DagBuilder::new(2).build().unwrap();
        let inst = Instance::from_raw(
            dag,
            vec![3, 3],
            vec![0, 1],
            vec![
                UnitInfo {
                    p_idle: 0,
                    p_work: 4,
                    is_link: false,
                },
                UnitInfo {
                    p_idle: 0,
                    p_work: 4,
                    is_link: false,
                },
            ],
            0,
        );
        let profile = PowerProfile::from_parts(vec![0, 10], vec![4]);
        let res = solve_exact(&inst, &profile, BnbConfig::default());
        assert!(res.optimal);
        assert_eq!(res.cost, 0, "serial execution fits the budget");
        // Check disjointness.
        let (a, b) = (res.schedule.start(0), res.schedule.start(1));
        assert!(a + 3 <= b || b + 3 <= a);
    }

    #[test]
    fn node_limit_returns_incumbent() {
        let inst = chain_instance(vec![2, 2, 2], 0, 3);
        let profile = PowerProfile::from_parts(vec![0, 20], vec![1]);
        let res = solve_exact(&inst, &profile, BnbConfig::with_node_limit(2));
        assert!(!res.optimal);
        // Incumbent (ASAP) cost is returned.
        let asap_cost = carbon_cost(&inst, &inst.asap_schedule(), &profile);
        assert_eq!(res.cost, asap_cost);
    }

    #[test]
    fn respects_deadline_exactly() {
        // Horizon exactly the ASAP makespan: only one schedule exists.
        let inst = chain_instance(vec![2, 3], 1, 2);
        let profile = PowerProfile::uniform(5, 0);
        let res = solve_exact(&inst, &profile, BnbConfig::default());
        assert!(res.optimal);
        assert_eq!(res.schedule.start(0), 0);
        assert_eq!(res.schedule.start(1), 2);
        // Cost: 5 idle units (1 each) + 5 active units (2 each) = 15.
        assert_eq!(res.cost, 15);
    }

    #[test]
    fn all_engines_find_the_same_optimum() {
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..10 {
            let n = rng.gen_range(1..4);
            let exec: Vec<Time> = (0..n).map(|_| rng.gen_range(1..4)).collect();
            let total: Time = exec.iter().sum();
            let inst = chain_instance(exec, rng.gen_range(0..2), rng.gen_range(1..6));
            let horizon = total + rng.gen_range(1..=total + 2);
            let mid = rng.gen_range(1..horizon);
            let profile = PowerProfile::from_parts(
                vec![0, mid, horizon],
                vec![rng.gen_range(0..6), rng.gen_range(0..6)],
            );
            let dense =
                solve_exact_on::<cawo_core::DenseGrid>(&inst, &profile, BnbConfig::default());
            let sparse =
                solve_exact_on::<cawo_core::IntervalEngine>(&inst, &profile, BnbConfig::default());
            let fenwick =
                solve_exact_on::<cawo_core::FenwickEngine>(&inst, &profile, BnbConfig::default());
            assert_eq!(dense.cost, sparse.cost, "trial {trial}");
            assert_eq!(dense.cost, fenwick.cost, "trial {trial}");
            // Identical pruning order ⇒ identical node counts too.
            assert_eq!(dense.nodes, sparse.nodes, "trial {trial}");
            assert_eq!(dense.nodes, fenwick.nodes, "trial {trial}");
        }
    }

    #[test]
    fn solver_trait_reports_status() {
        use crate::solver::Solver;
        let inst = chain_instance(vec![2, 2], 0, 3);
        let profile = PowerProfile::from_parts(vec![0, 4, 10], vec![0, 4]);
        let res = BnbSolver::default()
            .solve(&inst, &profile, Budget::default())
            .unwrap();
        assert_eq!(res.status, crate::solver::SolveStatus::Optimal);
        assert_eq!(res.lower_bound, Some(res.cost));
        assert_eq!(
            res.cost,
            carbon_cost(&inst, &res.schedule, &profile),
            "reported cost must match the returned schedule"
        );
        // An exhausted budget degrades to a timed-out incumbent.
        let tight = BnbSolver::default()
            .solve(&inst, &profile, Budget::nodes(1))
            .unwrap();
        assert_eq!(tight.status, crate::solver::SolveStatus::TimedOut);
        assert!(tight.cost >= res.cost);
        // An infeasible deadline is reported, not panicked on.
        let short = PowerProfile::uniform(3, 5);
        assert!(matches!(
            BnbSolver::default().solve(&inst, &short, Budget::default()),
            Err(crate::solver::SolveError::Infeasible(_))
        ));
    }

    #[test]
    fn boundary_candidates_match_full_enumeration_on_chains() {
        // The A.2 candidate restriction must be lossless on chains
        // (Lemma 4.2): Auto and Full agree bit-exactly on the optimum,
        // with Auto exploring no more nodes.
        let mut rng = StdRng::seed_from_u64(2026);
        for trial in 0..20 {
            let n = rng.gen_range(1..5);
            let exec: Vec<Time> = (0..n).map(|_| rng.gen_range(1..4)).collect();
            let total: Time = exec.iter().sum();
            let inst = chain_instance(exec, rng.gen_range(0..3), rng.gen_range(1..6));
            let horizon = total + rng.gen_range(1..=total + 4);
            let mid = rng.gen_range(1..horizon);
            let profile = PowerProfile::from_parts(
                vec![0, mid, horizon],
                vec![rng.gen_range(0..8), rng.gen_range(0..8)],
            );
            let full = solve_exact(
                &inst,
                &profile,
                BnbConfig {
                    candidates: CandidateMode::Full,
                    ..BnbConfig::default()
                },
            );
            let auto = solve_exact(&inst, &profile, BnbConfig::default());
            assert!(full.optimal && auto.optimal, "trial {trial}");
            assert_eq!(full.cost, auto.cost, "trial {trial}");
            assert!(
                auto.nodes <= full.nodes,
                "trial {trial}: restricted tree explored more nodes \
                 ({} vs {})",
                auto.nodes,
                full.nodes
            );
        }
    }

    #[test]
    fn multiunit_boundary_mode_is_honest() {
        // Two independent tasks on two units: the boundary restriction
        // has no losslessness proof there, so even an exhausted search
        // must not claim optimality — and the solver wrapper reports it
        // as feasible.
        let dag = DagBuilder::new(2).build().unwrap();
        let inst = Instance::from_raw(
            dag,
            vec![3, 3],
            vec![0, 1],
            vec![
                UnitInfo {
                    p_idle: 0,
                    p_work: 4,
                    is_link: false,
                },
                UnitInfo {
                    p_idle: 0,
                    p_work: 4,
                    is_link: false,
                },
            ],
            0,
        );
        let profile = PowerProfile::from_parts(vec![0, 5, 10], vec![4, 0]);
        let full = solve_exact(&inst, &profile, BnbConfig::default());
        assert!(full.optimal, "Auto = Full on multi-unit instances");
        let restricted = solve_exact(
            &inst,
            &profile,
            BnbConfig {
                candidates: CandidateMode::Boundary,
                ..BnbConfig::default()
            },
        );
        assert!(restricted.exhausted);
        assert!(!restricted.optimal, "no proof on multi-unit instances");
        assert!(restricted.cost >= full.cost, "still a valid schedule");
        use crate::solver::Solver;
        let res = BnbSolver {
            candidates: CandidateMode::Boundary,
            ..BnbSolver::default()
        }
        .solve(&inst, &profile, Budget::default())
        .unwrap();
        assert_eq!(res.status, crate::solver::SolveStatus::Feasible);
        assert_eq!(res.lower_bound, None);
    }

    /// Small random multi-unit instance: `n` tasks, random forward
    /// edges, random mapping onto two units. Kept tiny so the `Full`
    /// candidate enumeration exhausts in milliseconds.
    fn random_multiunit(rng: &mut StdRng) -> (Instance, PowerProfile) {
        let n = rng.gen_range(2..5usize);
        let mut b = DagBuilder::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(0.5) {
                    b.add_edge(i as u32, j as u32);
                }
            }
        }
        let exec: Vec<Time> = (0..n).map(|_| rng.gen_range(1..3)).collect();
        let total: Time = exec.iter().sum();
        let mapping: Vec<u32> = (0..n).map(|_| rng.gen_range(0..2)).collect();
        let unit = |p_idle, p_work| UnitInfo {
            p_idle,
            p_work,
            is_link: false,
        };
        let inst = Instance::from_raw(
            b.build().unwrap(),
            exec,
            mapping,
            vec![
                unit(rng.gen_range(0..2), rng.gen_range(1..5)),
                unit(rng.gen_range(0..2), rng.gen_range(1..5)),
            ],
            0,
        );
        let horizon = total + rng.gen_range(1..=4);
        let mid = rng.gen_range(1..horizon);
        let profile = PowerProfile::from_parts(
            vec![0, mid, horizon],
            vec![rng.gen_range(0..6), rng.gen_range(0..6)],
        );
        (inst, profile)
    }

    #[test]
    fn parallel_search_matches_sequential() {
        // The decomposed parallel search must agree with the sequential
        // DFS on cost, exhaustion and optimality — on chains (boundary
        // candidates) and on branching multi-unit instances (full
        // enumeration) alike.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1312);
        for trial in 0..20 {
            let (inst, profile) = if trial % 2 == 0 {
                let n = rng.gen_range(1..5);
                let exec: Vec<Time> = (0..n).map(|_| rng.gen_range(1..4)).collect();
                let total: Time = exec.iter().sum();
                let inst = chain_instance(exec, rng.gen_range(0..3), rng.gen_range(1..6));
                let horizon = total + rng.gen_range(1..=total + 3);
                let mid = rng.gen_range(1..horizon);
                let profile = PowerProfile::from_parts(
                    vec![0, mid, horizon],
                    vec![rng.gen_range(0..8), rng.gen_range(0..8)],
                );
                (inst, profile)
            } else {
                random_multiunit(&mut rng)
            };
            let seq = solve_exact(&inst, &profile, BnbConfig::default());
            let par = pool.install(|| {
                solve_exact(
                    &inst,
                    &profile,
                    BnbConfig {
                        parallel: true,
                        ..BnbConfig::default()
                    },
                )
            });
            assert_eq!(seq.cost, par.cost, "trial {trial}");
            assert_eq!(seq.exhausted, par.exhausted, "trial {trial}");
            assert_eq!(seq.optimal, par.optimal, "trial {trial}");
            assert!(par.schedule.validate(&inst, profile.deadline()).is_ok());
            assert_eq!(par.cost, carbon_cost(&inst, &par.schedule, &profile));
        }
    }

    #[test]
    fn parallel_flag_on_one_thread_pool_is_bit_identical() {
        // On a 1-thread pool `parallel: true` must replay the
        // sequential search exactly — schedule and node count included.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let inst = chain_instance(vec![2, 3, 1], 1, 4);
        let profile = PowerProfile::from_parts(vec![0, 5, 9, 14], vec![2, 6, 1]);
        let seq = solve_exact(&inst, &profile, BnbConfig::default());
        let par = pool.install(|| {
            solve_exact(
                &inst,
                &profile,
                BnbConfig {
                    parallel: true,
                    ..BnbConfig::default()
                },
            )
        });
        assert_eq!(seq.cost, par.cost);
        assert_eq!(seq.schedule.starts(), par.schedule.starts());
        assert_eq!(seq.nodes, par.nodes);
    }

    #[test]
    fn base_idle_overflow_included() {
        // Budget below idle: even an empty-looking interval costs.
        let inst = chain_instance(vec![1], 5, 1);
        let profile = PowerProfile::uniform(4, 2);
        let res = solve_exact(&inst, &profile, BnbConfig::default());
        // Idle overflow: 4 × (5-2) = 12, plus 1 active unit adds 1.
        assert_eq!(res.cost, 13);
        assert_eq!(res.cost, carbon_cost(&inst, &res.schedule, &profile));
    }
}

//! Root cutting planes for the compact sparse A.4 model.
//!
//! The aggregated precedence rows of [`crate::sparse_model`] keep the
//! model small but leave a weak relaxation: under loose deadlines the
//! LP spreads start mass across the windows, pays no brown power, and
//! bounds at 0 — branch-and-bound then cannot prune anything. This
//! module separates two families of valid inequalities at the root and
//! appends the violated ones as new rows:
//!
//! * **Disaggregated precedence cuts.** For an edge `(u, v)` with
//!   `ω(u) = w` and any threshold `θ`:
//!   `Σ_{l ≤ θ−w} s(u,l) − Σ_{l ≤ θ} s(v,l) ≥ 0` — "if `v` has started
//!   by `θ`, `u` must have started by `θ − w`". Exact (eq. (12)-style)
//!   per-threshold strength at one row per *violated* threshold instead
//!   of `T` rows per edge; separation is a prefix-sum sweep.
//! * **Lifted cover cuts over the power rows.** For a time unit `t`
//!   with budget `G_t` and a set `C` of tasks that can run at `t` with
//!   `ΣP_idle + Σ_{v∈C} P_v > G_t`, every integer point has
//!   `bu_t ≥ E_C · (Σ_{v∈C} y_{vt} − |C| + 1)` where
//!   `y_{vt} = Σ_{l: l ≤ t < l+ω(v)} s(v,l)` indicates `v` covering `t`
//!   and `E_C = ΣP_idle + Σ_C P_v − G_t` is the guaranteed excess.
//!   Greedy separation picks the largest fractional coverages first.
//! * **MIR cuts over the power rows.** Mixed-integer rounding of
//!   `Σ_v P_v·y_{vt} ≤ (G_t − ΣP_idle) + bu_t` with a divisor `δ` from
//!   the working powers: with `f = frac((G_t − ΣP_idle)/δ) > 0` every
//!   integer point satisfies
//!   `Σ_v c_v·y_{vt} ≤ ⌊(G_t−ΣP_idle)/δ⌋ + bu_t/(δ(1−f))`,
//!   `c_v = ⌊P_v/δ⌋ + max(0, frac(P_v/δ) − f)/(1−f)`. Where the
//!   budget is not a multiple of the power draws this dominates the
//!   plain row — it is what closes symmetric "k of n tasks overlap"
//!   fractional points that minimal covers cannot touch.
//!
//! Cuts only ever *add* rows: every integer schedule stays feasible, so
//! branch-and-bound over the augmented model remains exact, and the
//! augmented relaxation bound can only improve. New rows enter with
//! their slack basic — the old basis stays structurally valid and dual
//! feasible, which is precisely the warm state the dual simplex repairs
//! in a handful of pivots.

use std::collections::HashSet;
use std::time::Instant;

use cawo_core::Instance;
use cawo_graph::NodeId;
use cawo_lp::{LpSolution, LpStatus, RowCmp, SimplexOptions, SimplexSolver, VStat};
use cawo_platform::{PowerProfile, Time};

use crate::sparse_model::SparseA4Model;

/// Minimum violation for a cut to be worth a row.
const CUT_TOL: f64 = 1e-4;
/// Maximum separation rounds at the root.
const MAX_ROUNDS: u32 = 8;
/// Maximum cuts appended per round (most violated first).
const MAX_CUTS_PER_ROUND: usize = 200;
/// Objective gain (absolute) below which a round counts as stalled.
const MIN_GAIN: f64 = 1e-6;
/// Consecutive stalled rounds tolerated before giving up. A zero-gain
/// round often just moves the LP to a *different* fractional vertex
/// that the next separation round then cuts off, so one stall is not
/// yet failure.
const MAX_STALLED_ROUNDS: u32 = 2;

/// Counters of one root cut pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct CutStats {
    /// Separation rounds that appended at least one cut.
    pub rounds: u32,
    /// Total rows appended.
    pub cuts: u32,
    /// Disaggregated precedence cuts within `cuts`.
    pub prec_cuts: u32,
    /// Lifted cover cuts within `cuts`.
    pub cover_cuts: u32,
    /// MIR cuts within `cuts`.
    pub mir_cuts: u32,
    /// Simplex iterations spent re-solving after cuts.
    pub resolve_iters: u64,
    /// Dual-simplex pivots within `resolve_iters`.
    pub resolve_dual_iters: u64,
}

/// Which separator produced a cut — carried on every [`Cut`] so the
/// append loop can account rows per family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CutFamily {
    Precedence,
    Cover,
    Mir,
}

/// One separated inequality `terms · x ≥ rhs`.
struct Cut {
    violation: f64,
    terms: Vec<(u32, f64)>,
    rhs: f64,
    family: CutFamily,
}

/// Separates disaggregated precedence cuts at `x`: per edge, the most
/// violated threshold not yet emitted.
fn separate_precedence(
    model: &SparseA4Model,
    inst: &Instance,
    x: &[f64],
    seen: &mut HashSet<(NodeId, NodeId, Time)>,
    out: &mut Vec<Cut>,
) {
    for (u, v) in inst.dag().edges() {
        let w = inst.exec(u);
        let (est_u, lst_u) = model.window(u);
        let (est_v, lst_v) = model.window(v);
        // Walk θ over v's window keeping both running prefixes:
        // prefix_v(θ) = Σ_{l ≤ θ} x_v and prefix_u(θ − w).
        let mut prefix_v = 0.0f64;
        let mut prefix_u = 0.0f64;
        let mut next_u = est_u; // first u-start not yet in prefix_u
        let mut best: Option<(f64, Time)> = None;
        for theta in est_v..=lst_v {
            prefix_v += x[model.s_col(v, theta) as usize];
            if theta >= w {
                let cap = (theta - w).min(lst_u);
                while next_u <= cap {
                    prefix_u += x[model.s_col(u, next_u) as usize];
                    next_u += 1;
                }
            }
            if next_u > lst_u {
                break; // prefix_u ≡ 1 from here: no violation possible
            }
            let viol = prefix_v - prefix_u;
            if viol > CUT_TOL && best.is_none_or(|(b, _)| viol > b) {
                best = Some((viol, theta));
            }
        }
        let Some((violation, theta)) = best else {
            continue;
        };
        if !seen.insert((u, v, theta)) {
            continue;
        }
        let mut terms: Vec<(u32, f64)> = Vec::new();
        if theta >= w {
            for l in est_u..=(theta - w).min(lst_u) {
                terms.push((model.s_col(u, l), 1.0));
            }
        }
        for l in est_v..=theta {
            terms.push((model.s_col(v, l), -1.0));
        }
        out.push(Cut {
            violation,
            terms,
            rhs: 0.0,
            family: CutFamily::Precedence,
        });
    }
}

/// Separates cover cuts over the materialised power rows at `x`.
fn separate_covers(
    model: &SparseA4Model,
    inst: &Instance,
    profile: &PowerProfile,
    x: &[f64],
    seen: &mut HashSet<(Time, Vec<NodeId>)>,
    out: &mut Vec<Cut>,
) {
    let idle = inst.total_idle_power() as f64;
    let n = model.node_count() as NodeId;
    for &(t, bu) in model.power_rows() {
        let g = profile.budget_at(t) as f64;
        // Fractional coverage ŷ_v of every task that can run at t.
        let mut cand: Vec<(f64, NodeId, f64)> = Vec::new(); // (ŷ, v, P_v)
        for v in 0..n {
            let w = inst.exec(v);
            let p = inst.work_power(v) as f64;
            if w == 0 || p == 0.0 {
                continue;
            }
            let (est, lst) = model.window(v);
            let lo = est.max((t + 1).saturating_sub(w));
            let hi = lst.min(t);
            if lo > hi {
                continue;
            }
            let y: f64 = (lo..=hi)
                .map(|l| x[model.s_col(v, l) as usize])
                .sum::<f64>()
                .min(1.0);
            cand.push((y, v, p));
        }
        // Greedy cover: largest fractional coverage first, until the
        // selected working powers overflow the budget.
        // cawo-lint: allow(panic-path) — coverage ratios are finite by
        // construction (denominators are positive work powers).
        cand.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));
        let mut power = idle;
        let mut cover: Vec<(NodeId, f64)> = Vec::new();
        let mut y_sum = 0.0f64;
        for &(y, v, p) in &cand {
            power += p;
            y_sum += y;
            cover.push((v, y));
            if power > g {
                break;
            }
        }
        if power <= g || cover.is_empty() {
            continue; // no cover exists (bu can stay 0 regardless)
        }
        let excess = power - g;
        let slack = y_sum - (cover.len() as f64 - 1.0);
        let violation = excess * slack - x[bu as usize];
        if violation <= CUT_TOL {
            continue;
        }
        let mut key: Vec<NodeId> = cover.iter().map(|&(v, _)| v).collect();
        key.sort_unstable();
        if !seen.insert((t, key)) {
            continue;
        }
        // bu_t − E·Σ_C y_vt ≥ E·(1 − |C|).
        let mut terms: Vec<(u32, f64)> = vec![(bu, 1.0)];
        for &(v, _) in &cover {
            let w = inst.exec(v);
            let (est, lst) = model.window(v);
            let lo = est.max((t + 1).saturating_sub(w));
            let hi = lst.min(t);
            for l in lo..=hi {
                terms.push((model.s_col(v, l), -excess));
            }
        }
        out.push(Cut {
            violation,
            terms,
            rhs: excess * (1.0 - cover.len() as f64),
            family: CutFamily::Cover,
        });
    }
}

/// Separates MIR cuts over the materialised power rows at `x`, one
/// divisor (the most violated) per row and round. Cut coefficients
/// depend only on `(t, δ)`, so that pair is the dedup key.
fn separate_mir(
    model: &SparseA4Model,
    inst: &Instance,
    profile: &PowerProfile,
    x: &[f64],
    seen: &mut HashSet<(Time, u64)>,
    out: &mut Vec<Cut>,
) {
    let idle = inst.total_idle_power() as f64;
    let n = model.node_count() as NodeId;
    for &(t, bu) in model.power_rows() {
        let b = profile.budget_at(t) as f64 - idle;
        if b <= 0.0 {
            continue; // bu's lower bound already carries the row
        }
        // Tasks that can cover t: coverage ŷ, power, and the covering
        // start range.
        let mut cand: Vec<(f64, u64, Time, Time, NodeId)> = Vec::new();
        for v in 0..n {
            let w = inst.exec(v);
            let p = inst.work_power(v);
            if w == 0 || p == 0 {
                continue;
            }
            let (est, lst) = model.window(v);
            let lo = est.max((t + 1).saturating_sub(w));
            let hi = lst.min(t);
            if lo > hi {
                continue;
            }
            let y: f64 = (lo..=hi).map(|l| x[model.s_col(v, l) as usize]).sum();
            cand.push((y, p, lo, hi, v));
        }
        if cand.is_empty() {
            continue;
        }
        let mut deltas: Vec<u64> = cand.iter().map(|&(_, p, ..)| p).collect();
        deltas.sort_unstable();
        deltas.dedup();
        let mut best: Option<(f64, u64)> = None;
        for &delta_u in &deltas {
            let delta = delta_u as f64;
            let q = b / delta;
            let fl = q.floor();
            let f = q - fl;
            if !(1e-9..=1.0 - 1e-9).contains(&f) {
                continue; // divisible budget: MIR degenerates to the row
            }
            let scale = delta * (1.0 - f);
            let lhs: f64 = cand
                .iter()
                .map(|&(y, p, ..)| {
                    let pq = p as f64 / delta;
                    let pfl = pq.floor();
                    (pfl + ((pq - pfl) - f).max(0.0) / (1.0 - f)) * y
                })
                .sum();
            let viol = scale * (lhs - fl) - x[bu as usize];
            if viol > CUT_TOL && best.is_none_or(|(bv, _)| viol > bv) {
                best = Some((viol, delta_u));
            }
        }
        let Some((violation, delta_u)) = best else {
            continue;
        };
        if !seen.insert((t, delta_u)) {
            continue;
        }
        let delta = delta_u as f64;
        let q = b / delta;
        let fl = q.floor();
        let f = q - fl;
        let scale = delta * (1.0 - f);
        // bu_t − δ(1−f)·Σ_v c_v·y_vt ≥ −δ(1−f)·⌊b/δ⌋.
        let mut terms: Vec<(u32, f64)> = vec![(bu, 1.0)];
        for &(_, p, lo, hi, v) in &cand {
            let pq = p as f64 / delta;
            let pfl = pq.floor();
            let c = pfl + ((pq - pfl) - f).max(0.0) / (1.0 - f);
            if c <= 0.0 {
                continue;
            }
            for l in lo..=hi {
                terms.push((model.s_col(v, l), -scale * c));
            }
        }
        out.push(Cut {
            violation,
            terms,
            rhs: -scale * fl,
            family: CutFamily::Mir,
        });
    }
}

/// Runs the root cutting-plane loop: separate → append → dual-repair
/// re-solve, until no violated cuts remain, the objective stops moving,
/// the round cap is hit, or the deadline passes.
///
/// `root` must be the Optimal solution of the *current* `model.lp`;
/// returns the Optimal solution of the (possibly augmented) model —
/// on a budget-capped re-solve the previous Optimal solution is
/// returned, whose objective is still a valid relaxation bound of the
/// augmented (hence also the original) integer model.
pub fn root_cut_loop(
    model: &mut SparseA4Model,
    inst: &Instance,
    profile: &PowerProfile,
    simplex: &mut SimplexSolver,
    mut root: LpSolution,
    deadline: Option<Instant>,
) -> (LpSolution, CutStats) {
    let mut stats = CutStats::default();
    let mut seen_prec: HashSet<(NodeId, NodeId, Time)> = HashSet::new();
    let mut seen_cover: HashSet<(Time, Vec<NodeId>)> = HashSet::new();
    let mut seen_mir: HashSet<(Time, u64)> = HashSet::new();
    let mut stalled = 0u32;
    // The root bound is the solver's global dual bound until branching
    // proves more; sampling it per cut round yields the bound-vs-time
    // convergence series (`bench_obs`, `--obs-out`).
    cawo_obs::sample("milp", "dual_bound", root.objective);
    for _ in 0..MAX_ROUNDS {
        let mut cuts: Vec<Cut> = Vec::new();
        separate_precedence(model, inst, &root.x, &mut seen_prec, &mut cuts);
        separate_covers(model, inst, profile, &root.x, &mut seen_cover, &mut cuts);
        separate_mir(model, inst, profile, &root.x, &mut seen_mir, &mut cuts);
        if cuts.is_empty() {
            break;
        }
        // cawo-lint: allow(panic-path) — violations are finite: each is
        // a difference of finite LP activities.
        cuts.sort_by(|a, b| b.violation.partial_cmp(&a.violation).expect("finite"));
        cuts.truncate(MAX_CUTS_PER_ROUND);

        // Append the rows and re-enter from the old basis extended by
        // the new (basic) slacks: structurally valid, dual feasible,
        // primal infeasible exactly on the violated cuts — the dual
        // loop's home turf.
        let mut basis = root.basis.clone();
        for cut in &cuts {
            model.lp.add_row(cut.terms.clone(), RowCmp::Ge, cut.rhs);
            basis.statuses.push(VStat::Basic);
            stats.cuts += 1;
            let (fam_stat, fam_ctr) = match cut.family {
                CutFamily::Precedence => (&mut stats.prec_cuts, cawo_obs::Ctr::CutsPrecedence),
                CutFamily::Cover => (&mut stats.cover_cuts, cawo_obs::Ctr::CutsCover),
                CutFamily::Mir => (&mut stats.mir_cuts, cawo_obs::Ctr::CutsMir),
            };
            *fam_stat += 1;
            cawo_obs::inc(fam_ctr);
        }
        stats.rounds += 1;
        cawo_obs::inc(cawo_obs::Ctr::CutRounds);
        *simplex = SimplexSolver::new(&model.lp);
        simplex.set_basis(&basis);

        let opts = match deadline {
            None => SimplexOptions::default(),
            Some(d) => {
                // cawo-lint: allow(wall-clock) — rescaling the opt-in time budget.
                let now = Instant::now();
                if now >= d {
                    return (root, stats);
                }
                SimplexOptions {
                    time_limit: Some(d - now),
                    ..SimplexOptions::default()
                }
            }
        };
        let sol = simplex.solve(&opts);
        stats.resolve_iters += sol.iterations;
        stats.resolve_dual_iters += sol.stats.dual_iters;
        if sol.status != LpStatus::Optimal {
            // Budget ran out mid-repair (or numerics gave up): keep the
            // last proven root. Its objective bounds the original model
            // from below either way.
            return (root, stats);
        }
        let gain = sol.objective - root.objective;
        root = sol;
        cawo_obs::sample("milp", "dual_bound", root.objective);
        if gain < MIN_GAIN {
            stalled += 1;
            if stalled >= MAX_STALLED_ROUNDS {
                break;
            }
        } else {
            stalled = 0;
        }
    }
    (root, stats)
}

//! A dense two-phase primal simplex solver.
//!
//! This is the LP engine underneath the [`milp`](crate::milp) solver —
//! together they let the repository *solve* the Appendix A.4 ILP without
//! Gurobi (DESIGN.md, Substitution 1). The implementation is a textbook
//! full-tableau method:
//!
//! * constraints `≤ / = / ≥` are normalised to equalities with slack,
//!   surplus and artificial variables,
//! * phase 1 minimises the artificial sum to find a basic feasible
//!   solution, phase 2 optimises the real objective,
//! * Bland's rule guarantees termination on degenerate problems.
//!
//! Dense tableaus are quadratic in memory, which caps this solver at
//! hundreds of variables — since the sparse revised simplex of
//! [`cawo_lp`] took over the production `lp`/`milp` paths, this module's
//! job is to stay small and auditable as the *differential-testing
//! oracle* (`lp_parity` holds the two engines to bit-comparable
//! objectives; the `lp-dense`/`milp-dense` registry entries expose it).

/// Comparison operator of an LP constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpCmp {
    /// `Σ a_i x_i ≤ rhs`
    Le,
    /// `Σ a_i x_i = rhs`
    Eq,
    /// `Σ a_i x_i ≥ rhs`
    Ge,
}

/// Sparse linear expression: `(variable index, coefficient)` terms.
pub type LpTerms = Vec<(usize, f64)>;

/// One constraint row: sparse terms, comparison, right-hand side.
pub type LpRow = (LpTerms, LpCmp, f64);

/// A linear program: minimise `c·x` subject to rows, `x ≥ 0`.
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    /// Number of decision variables.
    pub num_vars: usize,
    /// Objective coefficients (minimisation), indexed by variable.
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub rows: Vec<LpRow>,
}

impl LpProblem {
    /// Creates a problem with `num_vars` variables and a zero objective.
    pub fn new(num_vars: usize) -> Self {
        LpProblem {
            num_vars,
            objective: vec![0.0; num_vars],
            rows: Vec::new(),
        }
    }

    /// Adds a constraint row.
    pub fn add_row(&mut self, terms: Vec<(usize, f64)>, cmp: LpCmp, rhs: f64) {
        debug_assert!(terms.iter().all(|&(v, _)| v < self.num_vars));
        self.rows.push((terms, cmp, rhs));
    }

    /// Adds the bound `x_v ≤ ub` as a row.
    pub fn add_upper_bound(&mut self, v: usize, ub: f64) {
        self.add_row(vec![(v, 1.0)], LpCmp::Le, ub);
    }
}

/// Solver outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimal solution found: objective value and variable assignment.
    Optimal {
        /// Minimised objective value.
        objective: f64,
        /// Assignment of the decision variables.
        solution: Vec<f64>,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

const EPS: f64 = 1e-9;

/// Solves the LP with the two-phase full-tableau simplex.
pub fn solve_lp(problem: &LpProblem) -> LpOutcome {
    let n = problem.num_vars;
    let m = problem.rows.len();

    // Normalise rows to `terms = rhs` with rhs >= 0, recording which
    // auxiliary columns each row needs.
    #[derive(Clone, Copy)]
    enum Aux {
        Slack,
        SurplusArtificial,
        Artificial,
    }
    let mut norm: Vec<(LpTerms, f64, Aux)> = Vec::with_capacity(m);
    for (terms, cmp, rhs) in &problem.rows {
        let mut t = terms.clone();
        let mut r = *rhs;
        let mut c = *cmp;
        if r < 0.0 {
            for (_, a) in &mut t {
                *a = -*a;
            }
            r = -r;
            c = match c {
                LpCmp::Le => LpCmp::Ge,
                LpCmp::Eq => LpCmp::Eq,
                LpCmp::Ge => LpCmp::Le,
            };
        }
        let aux = match c {
            LpCmp::Le => Aux::Slack,
            LpCmp::Ge => Aux::SurplusArtificial,
            LpCmp::Eq => Aux::Artificial,
        };
        norm.push((t, r, aux));
    }

    // Column layout: decision vars | slacks/surpluses | artificials.
    let mut num_slack = 0;
    let mut num_art = 0;
    for (_, _, aux) in &norm {
        match aux {
            Aux::Slack => num_slack += 1,
            Aux::SurplusArtificial => {
                num_slack += 1;
                num_art += 1;
            }
            Aux::Artificial => num_art += 1,
        }
    }
    let total = n + num_slack + num_art;
    let art_base = n + num_slack;

    // Tableau: m rows × (total + 1) columns, last column = RHS.
    let mut tab = vec![vec![0.0f64; total + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut slack_cursor = n;
    let mut art_cursor = art_base;
    for (i, (terms, rhs, aux)) in norm.iter().enumerate() {
        for &(v, a) in terms {
            tab[i][v] += a;
        }
        tab[i][total] = *rhs;
        match aux {
            Aux::Slack => {
                tab[i][slack_cursor] = 1.0;
                basis[i] = slack_cursor;
                slack_cursor += 1;
            }
            Aux::SurplusArtificial => {
                tab[i][slack_cursor] = -1.0;
                slack_cursor += 1;
                tab[i][art_cursor] = 1.0;
                basis[i] = art_cursor;
                art_cursor += 1;
            }
            Aux::Artificial => {
                tab[i][art_cursor] = 1.0;
                basis[i] = art_cursor;
                art_cursor += 1;
            }
        }
    }

    // Phase 1: minimise the sum of artificial variables.
    if num_art > 0 {
        let mut obj1 = vec![0.0f64; total + 1];
        for col in &mut obj1[art_base..total] {
            *col = 1.0;
        }
        // Price out the artificial basis.
        let obj1_snapshot = obj1.clone();
        for (i, &b) in basis.iter().enumerate() {
            if obj1_snapshot[b] != 0.0 {
                let f = obj1_snapshot[b];
                for c in 0..=total {
                    obj1[c] -= f * tab[i][c];
                }
            }
        }
        if !run_simplex(&mut tab, &mut obj1, &mut basis, total) {
            // Phase 1 is bounded by construction; unbounded = bug.
            // cawo-lint: allow(panic-path) — the phase-1 objective is a
            // sum of artificials, bounded below by 0.
            unreachable!("phase 1 objective is bounded below by 0");
        }
        if -obj1[total] > 1e-7 {
            return LpOutcome::Infeasible;
        }
        // Drive remaining artificials out of the basis where possible.
        for i in 0..m {
            if basis[i] >= art_base {
                if let Some(col) = (0..art_base).find(|&c| tab[i][c].abs() > EPS) {
                    pivot(&mut tab, &mut obj1, &mut basis, i, col, total);
                } // else: redundant row, keep the zero artificial basic.
            }
        }
    }

    // Phase 2: the real objective, artificials pinned at zero.
    let mut obj = vec![0.0f64; total + 1];
    obj[..n].copy_from_slice(&problem.objective[..n]);
    let obj_snapshot = obj.clone();
    for (i, &b) in basis.iter().enumerate() {
        if obj_snapshot[b] != 0.0 {
            let f = obj_snapshot[b];
            for c in 0..=total {
                obj[c] -= f * tab[i][c];
            }
        }
    }
    // Forbid artificial columns from re-entering.
    let limit = if num_art > 0 { art_base } else { total };
    if !run_simplex_limited(&mut tab, &mut obj, &mut basis, total, limit) {
        return LpOutcome::Unbounded;
    }

    let mut solution = vec![0.0f64; n];
    for (i, &b) in basis.iter().enumerate() {
        if b < n {
            solution[b] = tab[i][total];
        }
    }
    LpOutcome::Optimal {
        objective: -obj[total],
        solution,
    }
}

/// Runs simplex iterations until optimal (true) or unbounded (false).
fn run_simplex(tab: &mut [Vec<f64>], obj: &mut [f64], basis: &mut [usize], total: usize) -> bool {
    run_simplex_limited(tab, obj, basis, total, total)
}

fn run_simplex_limited(
    tab: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    total: usize,
    col_limit: usize,
) -> bool {
    loop {
        // Bland's rule: smallest column with negative reduced cost.
        let Some(enter) = (0..col_limit).find(|&c| obj[c] < -EPS) else {
            return true;
        };
        // Ratio test, ties by smallest basis index (Bland).
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for (i, row) in tab.iter().enumerate() {
            if row[enter] > EPS {
                let ratio = row[total] / row[enter];
                let better = match leave {
                    None => true,
                    Some(l) => ratio < best - EPS || (ratio < best + EPS && basis[i] < basis[l]),
                };
                if better {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return false; // unbounded
        };
        pivot(tab, obj, basis, leave, enter, total);
    }
}

/// Gauss-Jordan pivot on (row, col).
fn pivot(
    tab: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    row: usize,
    col: usize,
    total: usize,
) {
    let p = tab[row][col];
    debug_assert!(p.abs() > EPS);
    for cell in tab[row].iter_mut().take(total + 1) {
        *cell /= p;
    }
    // Split the tableau around the pivot row so the other rows can be
    // updated against it without cloning it each pivot.
    let (before, rest) = tab.split_at_mut(row);
    // cawo-lint: allow(panic-path) — `row < tab.len()`, so the split
    // tail is non-empty.
    let (pivot_row, after) = rest.split_first_mut().expect("pivot row in range");
    for r in before.iter_mut().chain(after.iter_mut()) {
        if r[col].abs() > EPS {
            let f = r[col];
            for (cell, &pv) in r.iter_mut().zip(pivot_row.iter()).take(total + 1) {
                *cell -= f * pv;
            }
        }
    }
    if obj[col].abs() > EPS {
        let f = obj[col];
        for (cell, &pv) in obj.iter_mut().zip(pivot_row.iter()).take(total + 1) {
            *cell -= f * pv;
        }
    }
    basis[row] = col;
}

/// The LP relaxation of the *literal* Appendix A.4 model solved by the
/// dense tableau — the differential-testing oracle behind the sparse
/// [`crate::sparse_model::LpSolver`] (registry name `lp-dense`). One
/// two-phase simplex solve yields a *proven lower bound* on the optimal
/// carbon cost (the objective is integral, so the bound rounds up),
/// which is paired with the strongest heuristic incumbent. When the
/// incumbent meets the bound the result is certified
/// [`SolveStatus::Optimal`](crate::solver::SolveStatus::Optimal) without any branching; otherwise it is
/// returned as [`SolveStatus::Feasible`](crate::solver::SolveStatus::Feasible) with the bound attached.
///
/// The dense tableau caps the tractable model size; larger instances
/// are declined as [`crate::solver::SolveError::Unsupported`].
#[derive(Debug, Clone, Copy)]
pub struct LpDenseSolver {
    /// Refuse models with more variables than this. One LP solve is
    /// much cheaper than the MILP search, but the dense tableau still
    /// pays rows × columns per pivot, and the row count outgrows the
    /// variable count (see [`crate::milp::MilpDenseSolver::max_vars`]).
    pub max_vars: usize,
}

impl Default for LpDenseSolver {
    fn default() -> Self {
        LpDenseSolver { max_vars: 600 }
    }
}

impl crate::solver::Solver for LpDenseSolver {
    fn name(&self) -> &'static str {
        "lp-dense"
    }

    fn solve(
        &self,
        inst: &cawo_core::Instance,
        profile: &cawo_platform::PowerProfile,
        _budget: crate::solver::Budget,
    ) -> Result<crate::solver::SolveResult, crate::solver::SolveError> {
        use crate::solver::{SolveError, SolveResult, SolveStats, SolveStatus};
        crate::solver::require_feasible(inst, profile)?;
        let n = inst.node_count();
        let t = profile.deadline() as usize;
        let var_count = crate::ilp::IlpModel::var_count_for(n, t);
        if var_count > self.max_vars {
            return Err(SolveError::Unsupported(format!(
                "LP relaxation needs {var_count} variables (cap {})",
                self.max_vars
            )));
        }
        let model = crate::ilp::IlpModel::build(inst, profile);
        let (lp, _) = crate::milp::lp_relaxation(&model);
        let lower_bound = match solve_lp(&lp) {
            LpOutcome::Optimal { objective, .. } => {
                // The true objective is integral; rounding the relaxed
                // bound up (modulo float noise) keeps it valid.
                (objective - 1e-6).ceil().max(0.0) as cawo_core::Cost
            }
            LpOutcome::Infeasible => {
                return Err(SolveError::Infeasible(
                    "LP relaxation infeasible — model/instance mismatch".into(),
                ))
            }
            // cawo-lint: allow(panic-path) — the A.4 objective is a sum
            // of non-negative overshoot variables, bounded below by 0.
            LpOutcome::Unbounded => unreachable!("A.4 objective is bounded below by 0"),
        };
        let (schedule, cost) = crate::solver::heuristic_incumbent(inst, profile);
        Ok(SolveResult {
            schedule,
            cost,
            status: if cost <= lower_bound {
                SolveStatus::Optimal
            } else {
                SolveStatus::Feasible
            },
            nodes: 0,
            lower_bound: Some(lower_bound),
            stats: SolveStats::default(),
            basis: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(o: LpOutcome) -> (f64, Vec<f64>) {
        match o {
            LpOutcome::Optimal {
                objective,
                solution,
            } => (objective, solution),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn maximisation_via_negated_objective() {
        // max x + y s.t. x + y <= 4, x <= 2  ⇒  min -(x+y) = -4.
        let mut p = LpProblem::new(2);
        p.objective = vec![-1.0, -1.0];
        p.add_row(vec![(0, 1.0), (1, 1.0)], LpCmp::Le, 4.0);
        p.add_row(vec![(0, 1.0)], LpCmp::Le, 2.0);
        let (obj, sol) = optimal(solve_lp(&p));
        assert!((obj + 4.0).abs() < 1e-6);
        assert!((sol[0] + sol[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x s.t. x + y = 3 ⇒ x = 0, y = 3.
        let mut p = LpProblem::new(2);
        p.objective = vec![1.0, 0.0];
        p.add_row(vec![(0, 1.0), (1, 1.0)], LpCmp::Eq, 3.0);
        let (obj, sol) = optimal(solve_lp(&p));
        assert!(obj.abs() < 1e-6);
        assert!((sol[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn ge_constraints_need_phase1() {
        // min x s.t. x >= 2.5 ⇒ 2.5.
        let mut p = LpProblem::new(1);
        p.objective = vec![1.0];
        p.add_row(vec![(0, 1.0)], LpCmp::Ge, 2.5);
        let (obj, _) = optimal(solve_lp(&p));
        assert!((obj - 2.5).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasibility() {
        let mut p = LpProblem::new(1);
        p.objective = vec![0.0];
        p.add_row(vec![(0, 1.0)], LpCmp::Ge, 2.0);
        p.add_row(vec![(0, 1.0)], LpCmp::Le, 1.0);
        assert_eq!(solve_lp(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut p = LpProblem::new(1);
        p.objective = vec![-1.0];
        assert_eq!(solve_lp(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // x - y <= -1 with x,y >= 0: e.g. y >= x + 1. min y ⇒ y = 1.
        let mut p = LpProblem::new(2);
        p.objective = vec![0.0, 1.0];
        p.add_row(vec![(0, 1.0), (1, -1.0)], LpCmp::Le, -1.0);
        let (obj, _) = optimal(solve_lp(&p));
        assert!((obj - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the origin.
        let mut p = LpProblem::new(2);
        p.objective = vec![-1.0, -1.0];
        p.add_row(vec![(0, 1.0)], LpCmp::Le, 0.0);
        p.add_row(vec![(0, 1.0), (1, 1.0)], LpCmp::Le, 1.0);
        p.add_row(vec![(1, 1.0)], LpCmp::Le, 1.0);
        let (obj, sol) = optimal(solve_lp(&p));
        assert!((obj + 1.0).abs() < 1e-6);
        assert!(sol[0].abs() < 1e-6);
    }

    #[test]
    fn upper_bound_helper() {
        let mut p = LpProblem::new(1);
        p.objective = vec![-1.0];
        p.add_upper_bound(0, 0.75);
        let (obj, sol) = optimal(solve_lp(&p));
        assert!((obj + 0.75).abs() < 1e-6);
        assert!((sol[0] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // Two identical equalities: phase 1 leaves a zero artificial in
        // the basis for the redundant row.
        let mut p = LpProblem::new(2);
        p.objective = vec![1.0, 2.0];
        p.add_row(vec![(0, 1.0), (1, 1.0)], LpCmp::Eq, 2.0);
        p.add_row(vec![(0, 1.0), (1, 1.0)], LpCmp::Eq, 2.0);
        let (obj, sol) = optimal(solve_lp(&p));
        assert!((sol[0] + sol[1] - 2.0).abs() < 1e-6);
        assert!((obj - 2.0).abs() < 1e-6); // all mass on x0
    }

    #[test]
    fn diet_style_problem() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1, y >= 1.
        let mut p = LpProblem::new(2);
        p.objective = vec![2.0, 3.0];
        p.add_row(vec![(0, 1.0), (1, 1.0)], LpCmp::Ge, 4.0);
        p.add_row(vec![(0, 1.0)], LpCmp::Ge, 1.0);
        p.add_row(vec![(1, 1.0)], LpCmp::Ge, 1.0);
        let (obj, sol) = optimal(solve_lp(&p));
        // Push everything onto the cheaper x: x = 3, y = 1.
        assert!((sol[0] - 3.0).abs() < 1e-6);
        assert!((sol[1] - 1.0).abs() < 1e-6);
        assert!((obj - 9.0).abs() < 1e-6);
    }
}

//! Branch-and-bound MILP solver on top of the [`simplex`](crate::simplex)
//! engine — the in-repo replacement for Gurobi on the Appendix A.4 model.
//!
//! The solver relaxes integrality, solves the LP, picks the most
//! fractional integer variable and branches `x ≤ ⌊v⌋` / `x ≥ ⌈v⌉`
//! depth-first, pruning on the incumbent. Time-indexed scheduling models
//! have notoriously weak LP relaxations (the Big-M rows of (17)–(20)
//! barely cut), so this is only practical for the *tiny* instances the
//! optimality comparison uses — which is exactly the role Gurobi plays
//! in the paper. [`solve_ilp_model`] wires it to [`IlpModel`]; a property
//! test confirms the MILP optimum equals the combinatorial
//! branch-and-bound optimum.

use std::time::{Duration, Instant};

use cawo_core::Instance;
use cawo_platform::PowerProfile;

use crate::ilp::{check_schedule_against_ilp, Cmp, Domain, IlpModel};
use crate::simplex::{solve_lp, LpCmp, LpOutcome, LpProblem};
use crate::solver::{
    heuristic_incumbent, require_feasible, Budget, SolveError, SolveResult, SolveStatus, Solver,
};

/// Configuration of the MILP search.
#[derive(Debug, Clone, Copy)]
pub struct MilpConfig {
    /// Maximum explored branch-and-bound nodes.
    pub node_limit: u64,
    /// Wall-clock cap on the whole search (checked per node).
    pub time_limit: Option<Duration>,
    /// Integrality tolerance.
    pub int_tol: f64,
}

impl Default for MilpConfig {
    fn default() -> Self {
        MilpConfig {
            node_limit: 200_000,
            time_limit: None,
            int_tol: 1e-6,
        }
    }
}

/// MILP outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum MilpOutcome {
    /// Proven optimal integer solution.
    Optimal {
        /// Objective value.
        objective: f64,
        /// Integer assignment.
        solution: Vec<f64>,
    },
    /// Best found within the node limit (not proven optimal).
    Feasible {
        /// Objective value of the incumbent.
        objective: f64,
        /// Incumbent assignment.
        solution: Vec<f64>,
    },
    /// No integer-feasible point.
    Infeasible,
    /// Node limit hit without any incumbent.
    Unknown,
}

/// Solves a MILP: the base problem plus a set of integer variables.
pub fn solve_milp(base: &LpProblem, integer_vars: &[usize], config: MilpConfig) -> MilpOutcome {
    solve_milp_counted(base, integer_vars, config).0
}

/// [`solve_milp`] that also reports the number of explored
/// branch-and-bound nodes.
pub fn solve_milp_counted(
    base: &LpProblem,
    integer_vars: &[usize],
    config: MilpConfig,
) -> (MilpOutcome, u64) {
    struct State<'a> {
        base: &'a LpProblem,
        integer_vars: &'a [usize],
        config: MilpConfig,
        deadline: Option<Instant>,
        nodes: u64,
        best: Option<(f64, Vec<f64>)>,
        exhausted: bool,
    }

    impl State<'_> {
        /// `bounds`: extra (var, lo, hi) rows accumulated by branching.
        fn dfs(&mut self, bounds: &mut Vec<(usize, f64, f64)>) {
            self.nodes += 1;
            if self.nodes > self.config.node_limit
                || self.deadline.is_some_and(|d| Instant::now() >= d)
            {
                self.exhausted = false;
                return;
            }
            let mut lp = self.base.clone();
            for &(v, lo, hi) in bounds.iter() {
                if lo > 0.0 {
                    lp.add_row(vec![(v, 1.0)], LpCmp::Ge, lo);
                }
                if hi.is_finite() {
                    lp.add_row(vec![(v, 1.0)], LpCmp::Le, hi);
                }
            }
            let (objective, solution) = match solve_lp(&lp) {
                LpOutcome::Infeasible => return,
                LpOutcome::Unbounded => {
                    // An unbounded relaxation of a bounded MILP can only
                    // happen with unbounded integer vars; treat as error.
                    panic!("MILP relaxation unbounded — model must be bounded")
                }
                LpOutcome::Optimal {
                    objective,
                    solution,
                } => (objective, solution),
            };
            // Prune on the incumbent (minimisation; integer objectives
            // would allow a +1 cut, but objectives here can be fractional
            // mid-branch, so prune conservatively).
            if let Some((best, _)) = &self.best {
                if objective >= *best - 1e-9 {
                    return;
                }
            }
            // Most fractional integer variable.
            let mut branch: Option<(usize, f64)> = None;
            let mut best_frac = self.config.int_tol;
            for &v in self.integer_vars {
                let x = solution[v];
                let frac = (x - x.round()).abs();
                if frac > best_frac {
                    best_frac = frac;
                    branch = Some((v, x));
                }
            }
            match branch {
                None => {
                    // Integer feasible.
                    let rounded: Vec<f64> = solution
                        .iter()
                        .enumerate()
                        .map(|(v, &x)| {
                            if self.integer_vars.contains(&v) {
                                x.round()
                            } else {
                                x
                            }
                        })
                        .collect();
                    if self
                        .best
                        .as_ref()
                        .is_none_or(|(b, _)| objective < *b - 1e-9)
                    {
                        self.best = Some((objective, rounded));
                    }
                }
                Some((v, x)) => {
                    // Branch down first (schedules favour small values).
                    bounds.push((v, 0.0, x.floor()));
                    self.dfs(bounds);
                    bounds.pop();
                    bounds.push((v, x.ceil(), f64::INFINITY));
                    self.dfs(bounds);
                    bounds.pop();
                }
            }
        }
    }

    let mut state = State {
        base,
        integer_vars,
        config,
        deadline: config.time_limit.map(|d| Instant::now() + d),
        nodes: 0,
        best: None,
        exhausted: true,
    };
    state.dfs(&mut Vec::new());
    let nodes = state.nodes;
    let outcome = match (state.best, state.exhausted) {
        (Some((objective, solution)), true) => MilpOutcome::Optimal {
            objective,
            solution,
        },
        (Some((objective, solution)), false) => MilpOutcome::Feasible {
            objective,
            solution,
        },
        (None, true) => MilpOutcome::Infeasible,
        (None, false) => MilpOutcome::Unknown,
    };
    (outcome, nodes)
}

/// Converts an [`IlpModel`] into an [`LpProblem`] plus its integer-
/// variable list (binaries get `≤ 1` rows; all variables are `≥ 0`).
pub fn lp_relaxation(model: &IlpModel) -> (LpProblem, Vec<usize>) {
    let mut lp = LpProblem::new(model.var_count());
    for &(v, c) in &model.objective {
        lp.objective[v as usize] += c as f64;
    }
    for con in &model.constraints {
        let terms: Vec<(usize, f64)> = con
            .terms
            .iter()
            .map(|&(v, a)| (v as usize, a as f64))
            .collect();
        let cmp = match con.cmp {
            Cmp::Le => LpCmp::Le,
            Cmp::Eq => LpCmp::Eq,
            Cmp::Ge => LpCmp::Ge,
        };
        lp.add_row(terms, cmp, con.rhs as f64);
    }
    let mut integer_vars = Vec::new();
    for (v, d) in model.domains.iter().enumerate() {
        match d {
            Domain::Binary => {
                lp.add_upper_bound(v, 1.0);
                integer_vars.push(v);
            }
            Domain::NonNegInt => integer_vars.push(v),
        }
    }
    (lp, integer_vars)
}

/// Solves the full Appendix A.4 model. The objective is integral, so the
/// result is rounded to the nearest integer.
pub fn solve_ilp_model(model: &IlpModel, config: MilpConfig) -> MilpOutcome {
    let (lp, ints) = lp_relaxation(model);
    solve_milp(&lp, &ints, config)
}

/// The Appendix A.4 model solved end-to-end as a [`Solver`]: builds the
/// time-indexed ILP, relaxes it, runs the simplex-based branch-and-
/// bound, extracts the schedule from the `s(v,t)` binaries and
/// re-certifies it against the ILP checker. This is the literal Gurobi
/// substitute — and, like the paper's Gurobi runs, it only scales to
/// tiny instances, so oversized models are declined as
/// [`SolveError::Unsupported`] rather than ground through.
#[derive(Debug, Clone, Copy)]
pub struct MilpSolver {
    /// Refuse models with more variables than this. The constraint
    /// count grows faster than the variable count (eq. (11) alone is
    /// `Σ_v ω(v)·(T − ω(v))` rows) and the dense tableau is quadratic
    /// in rows × columns *per B&B node*, so the default is deliberately
    /// conservative — mirroring the paper, which also only runs its
    /// ILP on the smallest instances.
    pub max_vars: usize,
}

impl Default for MilpSolver {
    fn default() -> Self {
        MilpSolver { max_vars: 300 }
    }
}

impl Solver for MilpSolver {
    fn name(&self) -> &'static str {
        "milp"
    }

    fn solve(
        &self,
        inst: &Instance,
        profile: &PowerProfile,
        budget: Budget,
    ) -> Result<SolveResult, SolveError> {
        require_feasible(inst, profile)?;
        let n = inst.node_count();
        let t = profile.deadline() as usize;
        let var_count = IlpModel::var_count_for(n, t);
        if var_count > self.max_vars {
            return Err(SolveError::Unsupported(format!(
                "time-indexed model needs {var_count} variables (cap {})",
                self.max_vars
            )));
        }
        let model = IlpModel::build(inst, profile);
        let config = MilpConfig {
            node_limit: budget.node_limit,
            time_limit: budget.time_limit,
            ..MilpConfig::default()
        };
        let (lp, ints) = lp_relaxation(&model);
        let (outcome, nodes) = solve_milp_counted(&lp, &ints, config);
        let (solution, proved) = match outcome {
            MilpOutcome::Optimal { solution, .. } => (solution, true),
            MilpOutcome::Feasible { solution, .. } => (solution, false),
            MilpOutcome::Unknown => {
                // Budget ran out before any integer point was found;
                // fall back to the heuristic incumbent.
                let (schedule, cost) = heuristic_incumbent(inst, profile);
                return Ok(SolveResult {
                    schedule,
                    cost,
                    status: SolveStatus::TimedOut,
                    nodes,
                    lower_bound: None,
                });
            }
            MilpOutcome::Infeasible => {
                // Unreachable for deadline-feasible instances; surface
                // it as an error instead of inventing a schedule.
                return Err(SolveError::Infeasible(
                    "A.4 model has no integer point — model/instance mismatch".into(),
                ));
            }
        };
        let schedule = model.extract_schedule(&solution).ok_or_else(|| {
            SolveError::Infeasible("MILP solution encodes no complete schedule".into())
        })?;
        // Independent certification: the checker validates the schedule
        // and re-derives the objective from the canonical assignment.
        let cost =
            check_schedule_against_ilp(inst, profile, &schedule).map_err(SolveError::Infeasible)?;
        Ok(SolveResult {
            lower_bound: proved.then_some(cost),
            schedule,
            cost,
            status: if proved {
                SolveStatus::Optimal
            } else {
                SolveStatus::TimedOut
            },
            nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_lp_passes_through() {
        // No integer vars: MILP = LP.
        let mut p = LpProblem::new(1);
        p.objective = vec![-1.0];
        p.add_upper_bound(0, 1.5);
        match solve_milp(&p, &[], MilpConfig::default()) {
            MilpOutcome::Optimal {
                objective,
                solution,
            } => {
                assert!((objective + 1.5).abs() < 1e-6);
                assert!((solution[0] - 1.5).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn branching_rounds_down() {
        // min -x, x <= 1.5, x integer ⇒ x = 1.
        let mut p = LpProblem::new(1);
        p.objective = vec![-1.0];
        p.add_upper_bound(0, 1.5);
        match solve_milp(&p, &[0], MilpConfig::default()) {
            MilpOutcome::Optimal {
                objective,
                solution,
            } => {
                assert!((objective + 1.0).abs() < 1e-6);
                assert!((solution[0] - 1.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn binary_knapsack() {
        // max 5a + 4b + 3c s.t. 2a + 3b + c <= 3, binaries.
        // Optimal: a = 1, c = 1 ⇒ 8.
        let mut p = LpProblem::new(3);
        p.objective = vec![-5.0, -4.0, -3.0];
        p.add_row(vec![(0, 2.0), (1, 3.0), (2, 1.0)], LpCmp::Le, 3.0);
        for v in 0..3 {
            p.add_upper_bound(v, 1.0);
        }
        match solve_milp(&p, &[0, 1, 2], MilpConfig::default()) {
            MilpOutcome::Optimal {
                objective,
                solution,
            } => {
                assert!((objective + 8.0).abs() < 1e-6);
                assert_eq!(
                    solution
                        .iter()
                        .map(|&x| x.round() as i64)
                        .collect::<Vec<_>>(),
                    vec![1, 0, 1]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn integer_infeasibility() {
        // 0.4 <= x <= 0.6, x integer: LP feasible, MILP infeasible.
        let mut p = LpProblem::new(1);
        p.add_row(vec![(0, 1.0)], LpCmp::Ge, 0.4);
        p.add_upper_bound(0, 0.6);
        assert_eq!(
            solve_milp(&p, &[0], MilpConfig::default()),
            MilpOutcome::Infeasible
        );
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let mut p = LpProblem::new(2);
        p.objective = vec![-1.0, -1.0];
        p.add_row(vec![(0, 2.0), (1, 2.0)], LpCmp::Le, 3.0);
        for v in 0..2 {
            p.add_upper_bound(v, 1.0);
        }
        let out = solve_milp(
            &p,
            &[0, 1],
            MilpConfig {
                node_limit: 1,
                ..MilpConfig::default()
            },
        );
        assert!(matches!(
            out,
            MilpOutcome::Unknown | MilpOutcome::Feasible { .. }
        ));
    }

    #[test]
    fn general_integers_supported() {
        // min -x s.t. 3x <= 10, x non-negative integer ⇒ x = 3.
        let mut p = LpProblem::new(1);
        p.objective = vec![-1.0];
        p.add_row(vec![(0, 3.0)], LpCmp::Le, 10.0);
        match solve_milp(&p, &[0], MilpConfig::default()) {
            MilpOutcome::Optimal { solution, .. } => {
                assert!((solution[0] - 3.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }
}

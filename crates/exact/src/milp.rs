//! MILP solvers for the Appendix A.4 model.
//!
//! Two engines live here:
//!
//! * the historical **dense** branch-and-bound over
//!   [`crate::simplex::solve_lp`] ([`solve_milp`], [`MilpDenseSolver`])
//!   — most-fractional variable dichotomy on the full-tableau simplex.
//!   Quadratic tableau memory caps it at toy sizes, which is exactly
//!   why it survives: it is the differential-testing oracle for
//!   everything below.
//! * the **sparse** branch-and-bound ([`MilpSolver`], registry name
//!   `milp`) on the compact windowed model of
//!   [`crate::sparse_model::SparseA4Model`], solved by `cawo_lp`'s
//!   revised simplex. Nodes *warm-start* from the incumbent basis
//!   (branching only changes column bounds, never the matrix), and
//!   branching is an E-schedule-flavoured *window split*: pick the task
//!   whose fractional start mass is most dispersed, split its window at
//!   the fractional mean. This is what lifts `--solver milp` to the
//!   paper's 200-task Fig. 7 regime.
//!
//! Degenerate models no longer panic: an unbounded relaxation surfaces
//! as [`MilpOutcome::Unbounded`] / [`crate::solver::SolveError`] so an
//! experiment-grid run records a status instead of crashing.

use std::time::{Duration, Instant};

use cawo_core::Instance;
use cawo_lp::{LpStatus, SimplexOptions, SimplexSolver};
use cawo_platform::{PowerProfile, Time};

use crate::cuts::root_cut_loop;
use crate::ilp::{check_schedule_against_ilp, Cmp, Domain, IlpModel};
use crate::simplex::{solve_lp, LpCmp, LpOutcome, LpProblem};
use crate::solver::{
    heuristic_incumbent, require_feasible, warm_incumbent, Budget, SolveError, SolveResult,
    SolveStats, SolveStatus, Solver, WarmStart,
};
use crate::sparse_model::{ceil_bound, engine_cost, SparseA4Model};

/// Configuration of the dense MILP search.
#[derive(Debug, Clone, Copy)]
pub struct MilpConfig {
    /// Maximum explored branch-and-bound nodes.
    pub node_limit: u64,
    /// Wall-clock cap on the whole search (checked per node).
    pub time_limit: Option<Duration>,
    /// Integrality tolerance.
    pub int_tol: f64,
}

impl Default for MilpConfig {
    fn default() -> Self {
        MilpConfig {
            node_limit: 200_000,
            time_limit: None,
            int_tol: 1e-6,
        }
    }
}

/// MILP outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum MilpOutcome {
    /// Proven optimal integer solution.
    Optimal {
        /// Objective value.
        objective: f64,
        /// Integer assignment.
        solution: Vec<f64>,
    },
    /// Best found within the node limit (not proven optimal).
    Feasible {
        /// Objective value of the incumbent.
        objective: f64,
        /// Incumbent assignment.
        solution: Vec<f64>,
    },
    /// No integer-feasible point.
    Infeasible,
    /// Node limit hit without any incumbent.
    Unknown,
    /// Some relaxation was unbounded — the model itself is degenerate
    /// (a bounded MILP's relaxations are bounded). Reported instead of
    /// panicking so a grid run records an honest status.
    Unbounded,
}

/// Solves a MILP: the base problem plus a set of integer variables.
pub fn solve_milp(base: &LpProblem, integer_vars: &[usize], config: MilpConfig) -> MilpOutcome {
    solve_milp_counted(base, integer_vars, config).0
}

/// [`solve_milp`] that also reports the number of explored
/// branch-and-bound nodes.
pub fn solve_milp_counted(
    base: &LpProblem,
    integer_vars: &[usize],
    config: MilpConfig,
) -> (MilpOutcome, u64) {
    struct State<'a> {
        base: &'a LpProblem,
        integer_vars: &'a [usize],
        config: MilpConfig,
        deadline: Option<Instant>,
        nodes: u64,
        best: Option<(f64, Vec<f64>)>,
        exhausted: bool,
        unbounded: bool,
    }

    impl State<'_> {
        /// `bounds`: extra (var, lo, hi) rows accumulated by branching.
        fn dfs(&mut self, bounds: &mut Vec<(usize, f64, f64)>) {
            if self.unbounded {
                return;
            }
            self.nodes += 1;
            if self.nodes > self.config.node_limit
                // cawo-lint: allow(wall-clock) — enforcing the opt-in time budget.
                || self.deadline.is_some_and(|d| Instant::now() >= d)
            {
                self.exhausted = false;
                return;
            }
            let mut lp = self.base.clone();
            for &(v, lo, hi) in bounds.iter() {
                if lo > 0.0 {
                    lp.add_row(vec![(v, 1.0)], LpCmp::Ge, lo);
                }
                if hi.is_finite() {
                    lp.add_row(vec![(v, 1.0)], LpCmp::Le, hi);
                }
            }
            let (objective, solution) = match solve_lp(&lp) {
                LpOutcome::Infeasible => return,
                LpOutcome::Unbounded => {
                    // An unbounded relaxation of a bounded MILP can only
                    // happen with unbounded integer vars; report the
                    // degenerate model instead of crashing the run.
                    self.unbounded = true;
                    self.exhausted = false;
                    return;
                }
                LpOutcome::Optimal {
                    objective,
                    solution,
                } => (objective, solution),
            };
            // Prune on the incumbent (minimisation; integer objectives
            // would allow a +1 cut, but objectives here can be fractional
            // mid-branch, so prune conservatively).
            if let Some((best, _)) = &self.best {
                if objective >= *best - 1e-9 {
                    return;
                }
            }
            // Most fractional integer variable.
            let mut branch: Option<(usize, f64)> = None;
            let mut best_frac = self.config.int_tol;
            for &v in self.integer_vars {
                let x = solution[v];
                let frac = (x - x.round()).abs();
                if frac > best_frac {
                    best_frac = frac;
                    branch = Some((v, x));
                }
            }
            match branch {
                None => {
                    // Integer feasible.
                    let rounded: Vec<f64> = solution
                        .iter()
                        .enumerate()
                        .map(|(v, &x)| {
                            if self.integer_vars.contains(&v) {
                                x.round()
                            } else {
                                x
                            }
                        })
                        .collect();
                    if self
                        .best
                        .as_ref()
                        .is_none_or(|(b, _)| objective < *b - 1e-9)
                    {
                        self.best = Some((objective, rounded));
                    }
                }
                Some((v, x)) => {
                    // Branch down first (schedules favour small values).
                    bounds.push((v, 0.0, x.floor()));
                    self.dfs(bounds);
                    bounds.pop();
                    bounds.push((v, x.ceil(), f64::INFINITY));
                    self.dfs(bounds);
                    bounds.pop();
                }
            }
        }
    }

    let mut state = State {
        base,
        integer_vars,
        config,
        // cawo-lint: allow(wall-clock) — opt-in time budget: `time_limit` is
        // documented as non-reproducible; the default (None) never reads the clock.
        deadline: config.time_limit.map(|d| Instant::now() + d),
        nodes: 0,
        best: None,
        exhausted: true,
        unbounded: false,
    };
    state.dfs(&mut Vec::new());
    let nodes = state.nodes;
    let outcome = match (state.unbounded, state.best, state.exhausted) {
        (true, _, _) => MilpOutcome::Unbounded,
        (false, Some((objective, solution)), true) => MilpOutcome::Optimal {
            objective,
            solution,
        },
        (false, Some((objective, solution)), false) => MilpOutcome::Feasible {
            objective,
            solution,
        },
        (false, None, true) => MilpOutcome::Infeasible,
        (false, None, false) => MilpOutcome::Unknown,
    };
    (outcome, nodes)
}

/// Converts an [`IlpModel`] into an [`LpProblem`] plus its integer-
/// variable list (binaries get `≤ 1` rows; all variables are `≥ 0`).
pub fn lp_relaxation(model: &IlpModel) -> (LpProblem, Vec<usize>) {
    let mut lp = LpProblem::new(model.var_count());
    for &(v, c) in &model.objective {
        lp.objective[v as usize] += c as f64;
    }
    for con in &model.constraints {
        let terms: Vec<(usize, f64)> = con
            .terms
            .iter()
            .map(|&(v, a)| (v as usize, a as f64))
            .collect();
        let cmp = match con.cmp {
            Cmp::Le => LpCmp::Le,
            Cmp::Eq => LpCmp::Eq,
            Cmp::Ge => LpCmp::Ge,
        };
        lp.add_row(terms, cmp, con.rhs as f64);
    }
    let mut integer_vars = Vec::new();
    for (v, d) in model.domains.iter().enumerate() {
        match d {
            Domain::Binary => {
                lp.add_upper_bound(v, 1.0);
                integer_vars.push(v);
            }
            Domain::NonNegInt => integer_vars.push(v),
        }
    }
    (lp, integer_vars)
}

/// Solves the full Appendix A.4 model with the dense engine. The
/// objective is integral, so the result is rounded to the nearest
/// integer.
pub fn solve_ilp_model(model: &IlpModel, config: MilpConfig) -> MilpOutcome {
    let (lp, ints) = lp_relaxation(model);
    solve_milp(&lp, &ints, config)
}

/// The literal Appendix A.4 model solved by the dense tableau engine —
/// kept as the registry's differential-testing oracle (`milp-dense`).
/// Like the paper's Gurobi runs it only scales to tiny instances, so
/// oversized models are declined as
/// [`SolveError::Unsupported`] rather than ground through.
#[derive(Debug, Clone, Copy)]
pub struct MilpDenseSolver {
    /// Refuse models with more variables than this. The constraint
    /// count grows faster than the variable count (eq. (11) alone is
    /// `Σ_v ω(v)·(T − ω(v))` rows) and the dense tableau is quadratic
    /// in rows × columns *per B&B node*, so the default is deliberately
    /// conservative.
    pub max_vars: usize,
}

impl Default for MilpDenseSolver {
    fn default() -> Self {
        MilpDenseSolver { max_vars: 300 }
    }
}

impl Solver for MilpDenseSolver {
    fn name(&self) -> &'static str {
        "milp-dense"
    }

    fn solve(
        &self,
        inst: &Instance,
        profile: &PowerProfile,
        budget: Budget,
    ) -> Result<SolveResult, SolveError> {
        require_feasible(inst, profile)?;
        let n = inst.node_count();
        let t = profile.deadline() as usize;
        let var_count = IlpModel::var_count_for(n, t);
        if var_count > self.max_vars {
            return Err(SolveError::Unsupported(format!(
                "time-indexed model needs {var_count} variables (cap {})",
                self.max_vars
            )));
        }
        let model = IlpModel::build(inst, profile);
        let config = MilpConfig {
            node_limit: budget.node_limit,
            time_limit: budget.time_limit,
            ..MilpConfig::default()
        };
        let (lp, ints) = lp_relaxation(&model);
        let (outcome, nodes) = solve_milp_counted(&lp, &ints, config);
        let (solution, proved) = match outcome {
            MilpOutcome::Optimal { solution, .. } => (solution, true),
            MilpOutcome::Feasible { solution, .. } => (solution, false),
            MilpOutcome::Unknown => {
                // Budget ran out before any integer point was found;
                // fall back to the heuristic incumbent.
                let (schedule, cost) = heuristic_incumbent(inst, profile);
                return Ok(SolveResult {
                    schedule,
                    cost,
                    status: SolveStatus::TimedOut,
                    nodes,
                    lower_bound: None,
                    stats: SolveStats::default(),
                    basis: None,
                });
            }
            MilpOutcome::Infeasible => {
                // Unreachable for deadline-feasible instances; surface
                // it as an error instead of inventing a schedule.
                return Err(SolveError::Infeasible(
                    "A.4 model has no integer point — model/instance mismatch".into(),
                ));
            }
            MilpOutcome::Unbounded => {
                return Err(SolveError::Unsupported(
                    "MILP relaxation unbounded — model must be bounded".into(),
                ));
            }
        };
        let schedule = model.extract_schedule(&solution).ok_or_else(|| {
            SolveError::Infeasible("MILP solution encodes no complete schedule".into())
        })?;
        // Independent certification: the checker validates the schedule
        // and re-derives the objective from the canonical assignment.
        let cost =
            check_schedule_against_ilp(inst, profile, &schedule).map_err(SolveError::Infeasible)?;
        Ok(SolveResult {
            lower_bound: proved.then_some(cost),
            schedule,
            cost,
            status: if proved {
                SolveStatus::Optimal
            } else {
                SolveStatus::Feasible
            },
            nodes,
            stats: SolveStats::default(),
            basis: None,
        })
    }
}

/// The sparse MILP solver (registry name `milp`): the compact
/// [`SparseA4Model`] solved by branch-and-bound over `cawo_lp`'s
/// revised simplex with warm-started nodes and window-split branching.
///
/// The search is seeded with the strongest heuristic incumbent, so even
/// a truncated run returns an integer-feasible schedule; a completed
/// root relaxation attaches a proven lower bound and certifies
/// optimality outright whenever the incumbent meets it.
#[derive(Debug, Clone, Copy)]
pub struct MilpSolver {
    /// Refuse models with more columns than this (memory guard).
    pub max_cols: usize,
    /// Integrality tolerance on the `s` columns.
    pub int_tol: f64,
}

impl Default for MilpSolver {
    fn default() -> Self {
        MilpSolver {
            max_cols: 2_000_000,
            int_tol: 1e-6,
        }
    }
}

/// One pending DFS operation of the sparse branch-and-bound.
enum Op {
    /// Restrict task `v`'s window to `[lo, hi]` (zeroing the start
    /// columns of the inclusive `forbid` range), solve, and possibly
    /// push children.
    Enter {
        v: u32,
        lo: Time,
        hi: Time,
        forbid: (Time, Time),
    },
    /// Undo the restriction on the way back up (restoring the same
    /// range to the model's stored column bounds).
    Leave {
        v: u32,
        lo: Time,
        hi: Time,
        forbid: (Time, Time),
    },
}

/// LP-guided rounding: start every task on the column carrying its
/// largest LP mass, then legalise forward along a topological order
/// (predecessor finish times push starts right; the backward-pass LST
/// windows guarantee the deadline stays reachable). One `O(cols)` pass
/// per call, so it runs at every node. This is what closes
/// loose-deadline instances: the aggregated relaxation's bound is often
/// exactly achievable, but only a rounding step away from the
/// fractional vertex the simplex parks on.
fn round_schedule(
    model: &SparseA4Model,
    inst: &Instance,
    deadline: Time,
    x: &[f64],
) -> Option<cawo_core::Schedule> {
    let order = inst.dag().topological_order()?;
    let n = model.node_count();
    let mut starts = vec![0 as Time; n];
    for &v in &order {
        let (est, lst) = model.window(v);
        let mut best_t = est;
        let mut best_m = f64::NEG_INFINITY;
        for t in est..=lst {
            let m = x[model.s_col(v, t) as usize];
            if m > best_m {
                best_m = m;
                best_t = t;
            }
        }
        // Predecessors run first; their pushes can only move the start
        // up to LST (s_u ≤ lst_u implies s_u + ω(u) ≤ lst_v).
        let floor = inst
            .dag()
            .predecessors(v)
            .iter()
            .map(|&u| starts[u as usize] + inst.exec(u))
            .max()
            .unwrap_or(0);
        starts[v as usize] = best_t.max(floor).clamp(est, lst);
    }
    let sched = cawo_core::Schedule::new(starts);
    sched.validate(inst, deadline).ok()?;
    Some(sched)
}

impl MilpSolver {
    /// Picks the branching task and split point from a fractional
    /// relaxation solution: the task whose start mass is most
    /// dispersed, split at its fractional mean (clamped so both
    /// children exclude support). Returns `None` when every task is
    /// integral.
    fn select_branch(
        &self,
        model: &SparseA4Model,
        windows: &[(Time, Time)],
        x: &[f64],
    ) -> Option<(u32, Time, f64)> {
        let mut best: Option<(u32, Time, f64, f64)> = None; // (v, t*, mass_left, spread)
        for v in 0..model.node_count() as u32 {
            let (lo, hi) = windows[v as usize];
            if lo == hi {
                continue;
            }
            let mut mean = 0.0f64;
            let mut supp_lo = Time::MAX;
            let mut supp_hi = 0;
            for t in lo..=hi {
                let xv = x[model.s_col(v, t) as usize];
                if xv > self.int_tol {
                    mean += xv * t as f64;
                    supp_lo = supp_lo.min(t);
                    supp_hi = supp_hi.max(t);
                }
            }
            if supp_lo >= supp_hi {
                continue; // integral (all mass on one start)
            }
            let mut spread = 0.0f64;
            let mut mass_left = 0.0f64;
            let split = (mean.floor() as Time).clamp(supp_lo, supp_hi - 1);
            for t in lo..=hi {
                let xv = x[model.s_col(v, t) as usize];
                if xv > self.int_tol {
                    spread += xv * (t as f64 - mean).abs();
                    if t <= split {
                        mass_left += xv;
                    }
                }
            }
            if best.as_ref().is_none_or(|&(_, _, _, s)| spread > s) {
                best = Some((v, split, mass_left, spread));
            }
        }
        best.map(|(v, split, mass_left, _)| (v, split, mass_left))
    }
}

impl Solver for MilpSolver {
    fn name(&self) -> &'static str {
        "milp"
    }

    fn solve(
        &self,
        inst: &Instance,
        profile: &PowerProfile,
        budget: Budget,
    ) -> Result<SolveResult, SolveError> {
        self.solve_inner(inst, profile, budget, &WarmStart::default())
    }

    fn solve_warm(
        &self,
        inst: &Instance,
        profile: &PowerProfile,
        budget: Budget,
        warm: &WarmStart,
    ) -> Result<SolveResult, SolveError> {
        self.solve_inner(inst, profile, budget, warm)
    }
}

impl MilpSolver {
    fn solve_inner(
        &self,
        inst: &Instance,
        profile: &PowerProfile,
        budget: Budget,
        warm: &WarmStart,
    ) -> Result<SolveResult, SolveError> {
        require_feasible(inst, profile)?;
        // Guard before building: the estimate bounds the real column
        // count from above, so nothing oversized is ever allocated.
        let est_cols = SparseA4Model::column_count_for(inst, profile);
        if est_cols > self.max_cols {
            return Err(SolveError::Unsupported(format!(
                "sparse model needs ≈{est_cols} columns (cap {})",
                self.max_cols
            )));
        }
        let mut model = SparseA4Model::build(inst, profile);
        let deadline = budget.deadline_from_now();
        let opts_for = |deadline: Option<Instant>| -> Option<SimplexOptions> {
            match deadline {
                None => Some(SimplexOptions::default()),
                Some(d) => {
                    // cawo-lint: allow(wall-clock) — rescaling the opt-in time budget.
                    let now = Instant::now();
                    (now < d).then(|| SimplexOptions {
                        time_limit: Some(d - now),
                        ..SimplexOptions::default()
                    })
                }
            }
        };
        let (mut best_sched, mut best_cost) = warm_incumbent(inst, profile, warm);
        let mut nodes: u64 = 1;
        cawo_obs::inc(cawo_obs::Ctr::MilpNodes); // the root node
        let mut stats = SolveStats::default();

        let mut simplex = SimplexSolver::new(&model.lp);
        // A warm basis from a previous solve of the same query restarts
        // the root in a handful of (dual) pivots. `set_basis` rejects a
        // dimension mismatch — the column layout depends on the
        // profile's budgets, so a shifted trace can invalidate the
        // token — in which case the incumbent is crashed into a
        // primal-feasible basis instead: the root relaxation then
        // starts in phase 2 at the incumbent's objective.
        let warmed = warm.basis.as_ref().is_some_and(|b| simplex.set_basis(b));
        if !warmed {
            simplex.set_basis(&model.crash_basis(inst, &best_sched));
        }
        let Some(opts) = opts_for(deadline) else {
            return Ok(SolveResult {
                schedule: best_sched,
                cost: best_cost,
                status: SolveStatus::TimedOut,
                nodes,
                lower_bound: None,
                stats,
                basis: None,
            });
        };
        let root = simplex.solve(&opts);
        // Harvest the warm-start token before cut rows change the
        // model's row count: a future solve builds a pristine model, so
        // only the pre-cut basis has matching dimensions.
        let root_basis = root.basis.clone();
        stats.lp_iterations += root.iterations;
        stats.dual_iterations += root.stats.dual_iters;
        stats.pricing = root.stats.pricing;
        match root.status {
            LpStatus::Infeasible => {
                return Err(SolveError::Infeasible(
                    "A.4 sparse relaxation infeasible — model/instance mismatch".into(),
                ))
            }
            LpStatus::Unbounded => {
                return Err(SolveError::Unsupported(
                    "MILP relaxation unbounded — model must be bounded".into(),
                ))
            }
            LpStatus::IterLimit | LpStatus::TimeLimit => {
                return Ok(SolveResult {
                    schedule: best_sched,
                    cost: best_cost,
                    status: SolveStatus::TimedOut,
                    nodes,
                    lower_bound: root.dual_bound.map(ceil_bound),
                    stats,
                    basis: Some(root_basis),
                });
            }
            LpStatus::Optimal => {}
        }
        // Root cut pass: disaggregated precedence + cover cuts lift the
        // often-zero aggregated bound before any branching happens. The
        // rows stay in the model for the whole search (valid for every
        // integer point), so node relaxations prune against the
        // strengthened polytope too.
        let (root, cut_stats) =
            root_cut_loop(&mut model, inst, profile, &mut simplex, root, deadline);
        stats.cut_rounds = cut_stats.rounds;
        stats.cuts = cut_stats.cuts;
        stats.cuts_prec = cut_stats.prec_cuts;
        stats.cuts_cover = cut_stats.cover_cuts;
        stats.cuts_mir = cut_stats.mir_cuts;
        stats.lp_iterations += cut_stats.resolve_iters;
        stats.dual_iterations += cut_stats.resolve_dual_iters;
        let root_bound = ceil_bound(root.objective);

        // DFS over window splits: branching only tightens column
        // bounds, so one persistent simplex re-solves every node from
        // the previous basis (phase 1 repairs the handful of
        // infeasibilities a branch introduces).
        let mut windows: Vec<(Time, Time)> = (0..model.node_count() as u32)
            .map(|v| model.window(v))
            .collect();
        let mut exhausted = true;
        let mut stack: Vec<Op> = Vec::new();
        let mut pending = Some(root); // solution of the node just solved

        loop {
            // Process the freshly solved node (root or Enter result).
            if let Some(sol) = pending.take() {
                let prune = match sol.status {
                    LpStatus::Infeasible => true,
                    LpStatus::Optimal => ceil_bound(sol.objective) >= best_cost,
                    LpStatus::IterLimit | LpStatus::TimeLimit | LpStatus::Unbounded => {
                        exhausted = false;
                        true
                    }
                };
                if prune {
                    cawo_obs::inc(cawo_obs::Ctr::MilpPruned);
                }
                if !prune {
                    // Round the node's fractional solution into an
                    // incumbent candidate before branching: an LP-mass
                    // rounding that hits the node bound collapses the
                    // subtree (and often the whole search) instantly.
                    if let Some(sched) = round_schedule(&model, inst, profile.deadline(), &sol.x) {
                        let cost = engine_cost(inst, profile, &sched);
                        if cost < best_cost {
                            best_cost = cost;
                            best_sched = sched;
                            cawo_obs::inc(cawo_obs::Ctr::MilpIncumbents);
                            cawo_obs::sample("milp", "incumbent", best_cost as f64);
                        }
                    }
                    // A rounded incumbent that meets this node's own
                    // bound settles the subtree without branching.
                    let settled =
                        sol.status == LpStatus::Optimal && ceil_bound(sol.objective) >= best_cost;
                    if settled {
                        // nothing to do: the matching Leave (if any) is
                        // already on the stack.
                    } else {
                        match self.select_branch(&model, &windows, &sol.x) {
                            None => {
                                // Integral (within tolerance): harvest the
                                // rounded schedule.
                                if let Some(sched) = model.extract_schedule(&sol.x) {
                                    debug_assert!(sched.validate(inst, profile.deadline()).is_ok());
                                    let cost = engine_cost(inst, profile, &sched);
                                    if cost < best_cost {
                                        best_cost = cost;
                                        best_sched = sched;
                                        cawo_obs::inc(cawo_obs::Ctr::MilpIncumbents);
                                        cawo_obs::sample("milp", "incumbent", best_cost as f64);
                                    }
                                    // Rounding sub-tolerance dust must not
                                    // have moved the objective: if the true
                                    // cost exceeds the node's LP bound the
                                    // subtree is not actually settled, so
                                    // the optimality claim is dropped (the
                                    // incumbent itself stays valid).
                                    if sol.status == LpStatus::Optimal
                                        && cost > ceil_bound(sol.objective)
                                    {
                                        exhausted = false;
                                    }
                                } else {
                                    // No column cleared 0.5 for some task —
                                    // not a usable integer point; the node
                                    // is abandoned without a claim.
                                    exhausted = false;
                                }
                            }
                            Some((v, split, mass_left)) => {
                                let (lo, hi) = windows[v as usize];
                                // Left child keeps [lo, split], right keeps
                                // [split+1, hi]; explore the heavier side
                                // first (stack order is reversed).
                                let left = (
                                    Op::Enter {
                                        v,
                                        lo,
                                        hi: split,
                                        forbid: (split + 1, hi),
                                    },
                                    Op::Leave {
                                        v,
                                        lo,
                                        hi,
                                        forbid: (split + 1, hi),
                                    },
                                );
                                let right = (
                                    Op::Enter {
                                        v,
                                        lo: split + 1,
                                        hi,
                                        forbid: (lo, split),
                                    },
                                    Op::Leave {
                                        v,
                                        lo,
                                        hi,
                                        forbid: (lo, split),
                                    },
                                );
                                if mass_left >= 0.5 {
                                    stack.push(right.1);
                                    stack.push(right.0);
                                    stack.push(left.1);
                                    stack.push(left.0);
                                } else {
                                    stack.push(left.1);
                                    stack.push(left.0);
                                    stack.push(right.1);
                                    stack.push(right.0);
                                }
                            }
                        }
                    }
                }
            }
            let Some(op) = stack.pop() else { break };
            match op {
                Op::Leave { v, lo, hi, forbid } => {
                    windows[v as usize] = (lo, hi);
                    for t in forbid.0..=forbid.1 {
                        let c = model.s_col(v, t) as usize;
                        // Restore the model's stored bounds, not a
                        // hard-coded [0, 1].
                        let (blo, bhi) = model.lp.bounds(c);
                        simplex.set_col_bounds(c, blo, bhi);
                    }
                }
                Op::Enter { v, lo, hi, forbid } => {
                    nodes += 1;
                    cawo_obs::inc(cawo_obs::Ctr::MilpNodes);
                    if nodes > budget.node_limit {
                        exhausted = false;
                        // The matching Leave is on the stack; fall
                        // through without solving.
                        windows[v as usize] = (lo, hi);
                        for t in forbid.0..=forbid.1 {
                            simplex.set_col_bounds(model.s_col(v, t) as usize, 0.0, 0.0);
                        }
                        continue;
                    }
                    windows[v as usize] = (lo, hi);
                    for t in forbid.0..=forbid.1 {
                        simplex.set_col_bounds(model.s_col(v, t) as usize, 0.0, 0.0);
                    }
                    match opts_for(deadline) {
                        None => exhausted = false,
                        Some(opts) => {
                            // Cap per-node pivots so one stalled
                            // re-solve cannot consume the whole search
                            // budget; a capped node is pruned honestly
                            // (`exhausted` drops the optimality claim).
                            let opts = SimplexOptions {
                                max_iters: 50_000,
                                ..opts
                            };
                            let sol = simplex.solve(&opts);
                            stats.lp_iterations += sol.iterations;
                            stats.dual_iterations += sol.stats.dual_iters;
                            pending = Some(sol);
                        }
                    }
                }
            }
        }

        let (status, lower_bound) = if exhausted {
            (SolveStatus::Optimal, Some(best_cost))
        } else {
            (SolveStatus::Feasible, Some(root_bound))
        };
        Ok(SolveResult {
            schedule: best_sched,
            cost: best_cost,
            status,
            nodes,
            lower_bound,
            stats,
            basis: Some(root_basis),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_lp_passes_through() {
        // No integer vars: MILP = LP.
        let mut p = LpProblem::new(1);
        p.objective = vec![-1.0];
        p.add_upper_bound(0, 1.5);
        match solve_milp(&p, &[], MilpConfig::default()) {
            MilpOutcome::Optimal {
                objective,
                solution,
            } => {
                assert!((objective + 1.5).abs() < 1e-6);
                assert!((solution[0] - 1.5).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn branching_rounds_down() {
        // min -x, x <= 1.5, x integer ⇒ x = 1.
        let mut p = LpProblem::new(1);
        p.objective = vec![-1.0];
        p.add_upper_bound(0, 1.5);
        match solve_milp(&p, &[0], MilpConfig::default()) {
            MilpOutcome::Optimal {
                objective,
                solution,
            } => {
                assert!((objective + 1.0).abs() < 1e-6);
                assert!((solution[0] - 1.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn binary_knapsack() {
        // max 5a + 4b + 3c s.t. 2a + 3b + c <= 3, binaries.
        // Optimal: a = 1, c = 1 ⇒ 8.
        let mut p = LpProblem::new(3);
        p.objective = vec![-5.0, -4.0, -3.0];
        p.add_row(vec![(0, 2.0), (1, 3.0), (2, 1.0)], LpCmp::Le, 3.0);
        for v in 0..3 {
            p.add_upper_bound(v, 1.0);
        }
        match solve_milp(&p, &[0, 1, 2], MilpConfig::default()) {
            MilpOutcome::Optimal {
                objective,
                solution,
            } => {
                assert!((objective + 8.0).abs() < 1e-6);
                assert_eq!(
                    solution
                        .iter()
                        .map(|&x| x.round() as i64)
                        .collect::<Vec<_>>(),
                    vec![1, 0, 1]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn integer_infeasibility() {
        // 0.4 <= x <= 0.6, x integer: LP feasible, MILP infeasible.
        let mut p = LpProblem::new(1);
        p.add_row(vec![(0, 1.0)], LpCmp::Ge, 0.4);
        p.add_upper_bound(0, 0.6);
        assert_eq!(
            solve_milp(&p, &[0], MilpConfig::default()),
            MilpOutcome::Infeasible
        );
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let mut p = LpProblem::new(2);
        p.objective = vec![-1.0, -1.0];
        p.add_row(vec![(0, 2.0), (1, 2.0)], LpCmp::Le, 3.0);
        for v in 0..2 {
            p.add_upper_bound(v, 1.0);
        }
        let out = solve_milp(
            &p,
            &[0, 1],
            MilpConfig {
                node_limit: 1,
                ..MilpConfig::default()
            },
        );
        assert!(matches!(
            out,
            MilpOutcome::Unknown | MilpOutcome::Feasible { .. }
        ));
    }

    #[test]
    fn general_integers_supported() {
        // min -x s.t. 3x <= 10, x non-negative integer ⇒ x = 3.
        let mut p = LpProblem::new(1);
        p.objective = vec![-1.0];
        p.add_row(vec![(0, 3.0)], LpCmp::Le, 10.0);
        match solve_milp(&p, &[0], MilpConfig::default()) {
            MilpOutcome::Optimal { solution, .. } => {
                assert!((solution[0] - 3.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbounded_relaxation_is_reported_not_panicked() {
        // min -x, x integer, no rows at all: relaxation unbounded.
        let mut p = LpProblem::new(1);
        p.objective = vec![-1.0];
        assert_eq!(
            solve_milp(&p, &[0], MilpConfig::default()),
            MilpOutcome::Unbounded
        );
    }

    #[test]
    fn sparse_milp_matches_dense_on_chains() {
        use cawo_core::enhanced::UnitInfo;
        use cawo_graph::dag::DagBuilder;
        let exec: Vec<Time> = vec![2, 3];
        let mut b = DagBuilder::new(2);
        b.add_edge(0, 1);
        let inst = Instance::from_raw(
            b.build().unwrap(),
            exec,
            vec![0, 0],
            vec![UnitInfo {
                p_idle: 1,
                p_work: 4,
                is_link: false,
            }],
            0,
        );
        let profile = PowerProfile::from_parts(vec![0, 4, 10], vec![3, 6]);
        let sparse = MilpSolver::default()
            .solve(&inst, &profile, Budget::default())
            .unwrap();
        let dense = MilpDenseSolver::default()
            .solve(&inst, &profile, Budget::default())
            .unwrap();
        assert_eq!(sparse.status, SolveStatus::Optimal);
        assert_eq!(dense.status, SolveStatus::Optimal);
        assert_eq!(sparse.cost, dense.cost);
        assert_eq!(sparse.lower_bound, Some(sparse.cost));
    }
}

//! The 3-Partition reduction of the strong NP-completeness proof
//! (§4.2 / Appendix A.3).
//!
//! Given a 3-Partition instance — a multiset `S = {x_1, …, x_3n}` with
//! `Σ x_i = n·B` and `B/4 < x_i < B/2` — the UCAS gadget consists of:
//!
//! * `3n` power-homogeneous processors (`P_idle = 0`, `P_work = 1`),
//! * `3n` independent tasks, task `v_i` of length `x_i` mapped to
//!   processor `p_i`,
//! * a horizon of `2n - 1` intervals: odd intervals of length `B` with
//!   green budget 1, separated by unit-length intervals with budget 0.
//!
//! A zero-cost schedule exists **iff** the 3-Partition instance is a
//! yes-instance: cost 0 forces exactly one active processor per time
//! unit of the green intervals and none elsewhere, which packs the tasks
//! into `n` triplets of total length `B`. This module builds the gadget
//! so tests can exercise the exact solver on adversarial instances and
//! verify both directions of the equivalence on small inputs.

use cawo_core::enhanced::UnitInfo;
use cawo_core::Instance;
use cawo_graph::dag::DagBuilder;
use cawo_platform::{PowerProfile, Time};

/// Builds the UCAS gadget `(instance, profile)` for multiset `xs` and
/// bound `b`. Requires `xs.len() = 3n` for some `n ≥ 1`; the value
/// conditions of 3-Partition are the caller's business (the gadget is
/// well-defined without them, the iff needs them).
pub fn three_partition_instance(xs: &[Time], b: Time) -> (Instance, PowerProfile) {
    assert!(
        !xs.is_empty() && xs.len().is_multiple_of(3),
        "need 3n elements"
    );
    let n = xs.len() / 3;
    let dag = DagBuilder::new(xs.len())
        .build()
        // cawo-lint: allow(panic-path) — the builder saw no edges, and
        // an edgeless graph cannot contain a cycle.
        .expect("no edges, trivially acyclic");
    let units: Vec<UnitInfo> = (0..xs.len())
        .map(|_| UnitInfo {
            p_idle: 0,
            p_work: 1,
            is_link: false,
        })
        .collect();
    let unit_of: Vec<u32> = (0..xs.len() as u32).collect();
    let inst = Instance::from_raw(dag, xs.to_vec(), unit_of, units, 0);

    // Intervals: B, 1, B, 1, …, B (2n - 1 of them).
    let mut boundaries = vec![0 as Time];
    let mut budgets = Vec::with_capacity(2 * n - 1);
    let mut cur: Time = 0;
    for k in 0..2 * n - 1 {
        let (len, g) = if k % 2 == 0 { (b, 1) } else { (1, 0) };
        cur += len;
        boundaries.push(cur);
        budgets.push(g);
    }
    (inst, PowerProfile::from_parts(boundaries, budgets))
}

/// Total horizon of the gadget: `nB + n - 1`.
pub fn gadget_horizon(n: usize, b: Time) -> Time {
    n as Time * b + n as Time - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb::{solve_exact, BnbConfig};

    #[test]
    fn gadget_shape() {
        let xs = vec![3, 3, 3, 3, 3, 3]; // n = 2, B = 9
        let (inst, profile) = three_partition_instance(&xs, 9);
        assert_eq!(inst.node_count(), 6);
        assert_eq!(inst.unit_count(), 6);
        assert_eq!(profile.interval_count(), 3);
        assert_eq!(profile.deadline(), gadget_horizon(2, 9));
        assert_eq!(profile.budget(0), 1);
        assert_eq!(profile.budget(1), 0);
        assert_eq!(inst.total_idle_power(), 0);
    }

    #[test]
    fn yes_instance_has_zero_cost_schedule() {
        // S = {4, 5, 6, 4, 5, 6}, B = 15: triplets (4,5,6) twice.
        // (Values satisfy B/4 < x < B/2? 15/4=3.75 < 4..6 < 7.5 ✓.)
        let xs = vec![4, 5, 6, 4, 5, 6];
        let (inst, profile) = three_partition_instance(&xs, 15);
        let res = solve_exact(&inst, &profile, BnbConfig::default());
        assert!(res.optimal);
        assert_eq!(res.cost, 0, "yes-instance must admit a zero-cost schedule");
        assert!(res.schedule.validate(&inst, profile.deadline()).is_ok());
    }

    #[test]
    fn no_instance_has_positive_cost() {
        // S = {4, 4, 4, 6, 6, 6}, B = 15: 4+4+4=12, 6+6+6=18 — the only
        // 3-partitions are (4,4,4)/(6,6,6) or mixed (4,4,6)=14 /
        // (4,6,6)=16; none hits 15, so no zero-cost schedule exists.
        let xs = vec![4, 4, 4, 6, 6, 6];
        let (inst, profile) = three_partition_instance(&xs, 15);
        let res = solve_exact(&inst, &profile, BnbConfig::default());
        assert!(res.optimal);
        assert!(res.cost > 0, "no-instance cannot reach zero cost");
    }

    #[test]
    fn single_triplet_trivial_yes() {
        let xs = vec![5, 6, 7];
        let (inst, profile) = three_partition_instance(&xs, 18);
        // n=1: a single interval of length 18, budget 1.
        assert_eq!(profile.interval_count(), 1);
        let res = solve_exact(&inst, &profile, BnbConfig::default());
        assert!(res.optimal);
        assert_eq!(res.cost, 0);
    }

    #[test]
    #[should_panic(expected = "3n elements")]
    fn rejects_non_triple_input() {
        let _ = three_partition_instance(&[1, 2], 3);
    }
}

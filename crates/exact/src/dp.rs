//! Uniprocessor dynamic programs (§4.1, Appendix A.2).
//!
//! With one processor the task order is fixed, so a schedule is just a
//! completion time per task. Two exact algorithms:
//!
//! * [`dp_pseudo_polynomial`] — the table `Opt(i, t)` over every time
//!   unit `t ≤ T` (Eq. (1)), `O(n·T)` after prefix-sum preprocessing,
//! * [`dp_polynomial`] — the same recurrence restricted to the
//!   E-schedule candidate end times of Appendix A.2 (`O(n³J)` many),
//!   which Lemma 4.2 proves lossless.
//!
//! Both include the idle-gap cost term omitted in the paper's Eq. (1):
//! the paper may drop it because its §6.1 profiles guarantee
//! `G_j ≥ Σ P_idle` (making idle time free); these implementations stay
//! exact for arbitrary budgets.
//!
//! Neither DP ever re-prices a candidate schedule: every transition is
//! answered from two [`PrefixCost`] prefix-sum oracles (active and idle
//! platform power) in `O(log J)` — the engine-backed incremental
//! costing of `cawo_core::engine`, specialised to the uniprocessor
//! setting.

use std::time::Instant;

use cawo_core::{Cost, Instance, PrefixCost, Schedule};
use cawo_graph::NodeId;
use cawo_platform::{PowerProfile, Time};

use crate::solver::{
    heuristic_incumbent, require_feasible, Budget, SolveError, SolveResult, SolveStats,
    SolveStatus, Solver,
};

/// Result of an exact uniprocessor optimisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpResult {
    /// Optimal carbon cost.
    pub cost: Cost,
    /// An optimal schedule.
    pub schedule: Schedule,
}

/// Extracts the single chain (task order) of a uniprocessor instance.
/// Panics if more than one unit actually executes nodes.
fn single_chain(inst: &Instance) -> (Vec<NodeId>, u64) {
    // cawo-lint: allow(panic-path) — documented panic: the DP entry
    // points require uniprocessor instances; the solver registry
    // validates shape before dispatching here.
    crate::solver::single_chain(inst).unwrap_or_else(|e| panic!("{e}"))
}

/// The pseudo-polynomial DP (Eq. (1) plus idle-gap cost). `O(n·T)` time
/// and memory; only suitable for moderate horizons.
pub fn dp_pseudo_polynomial(inst: &Instance, profile: &PowerProfile) -> DpResult {
    // cawo-lint: allow(panic-path) — with no budget the budgeted DP
    // cannot time out, so it always returns Some.
    let (res, _) = dp_pseudo_budgeted(inst, profile, None).expect("no deadline given");
    res
}

/// [`dp_pseudo_polynomial`] with a wall-clock deadline: returns `None`
/// (abandoning the table) when the clock runs out between chain
/// positions. The second tuple element counts evaluated DP cells.
fn dp_pseudo_budgeted(
    inst: &Instance,
    profile: &PowerProfile,
    wall_deadline: Option<Instant>,
) -> Option<(DpResult, u64)> {
    let (chain, p_work) = single_chain(inst);
    let horizon = profile.deadline();
    let idle = inst.total_idle_power();
    let active = PrefixCost::new(profile, idle + p_work);
    let idle_cost = PrefixCost::new(profile, idle);

    let n = chain.len();
    let t_max = horizon as usize;
    const INF: u64 = u64::MAX / 4;

    // opt[t] = best cost for the prefix ending exactly at t (current i).
    let mut opt = vec![INF; t_max + 1];
    let mut parents: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut cells: u64 = 0;

    let mut prefix_exec: Time = 0;
    for (i, &v) in chain.iter().enumerate() {
        // cawo-lint: allow(wall-clock) — enforcing the opt-in time budget.
        if wall_deadline.is_some_and(|d| Instant::now() >= d) {
            return None;
        }
        cells += t_max as u64 + 1;
        let w = inst.exec(v);
        prefix_exec += w;
        let mut next = vec![INF; t_max + 1];
        let mut parent = vec![u32::MAX; t_max + 1];
        if i == 0 {
            for t in w..=horizon {
                // Idle before the first task is also charged.
                next[t as usize] = idle_cost.window(0, t - w) + active.window(t - w, t);
                parent[t as usize] = 0;
            }
        } else {
            // Eq. (1) with a running prefix minimum: the transition cost
            // decomposes as Opt(i-1, s) + idle(s, x) + active(x, t) with
            // x = t - ω(v_i), so minimising over s ≤ x only needs
            // min_s (Opt(i-1, s) - idle_cum(s)), kept incrementally in
            // i128 (the keyed difference can be negative).
            let mut best_val: i128 = i128::MAX;
            let mut best_at: u32 = u32::MAX;
            let mut s_cursor: Time = prefix_exec - w; // earliest end of task i-1
            for t in prefix_exec..=horizon {
                let x = t - w;
                while s_cursor <= x {
                    if opt[s_cursor as usize] < INF {
                        let key = opt[s_cursor as usize] as i128 - idle_cost.cum(s_cursor) as i128;
                        if key < best_val {
                            best_val = key;
                            best_at = s_cursor as u32;
                        }
                    }
                    s_cursor += 1;
                }
                if best_at != u32::MAX {
                    let total = best_val + idle_cost.cum(x) as i128 + active.window(x, t) as i128;
                    // cawo-lint: allow(panic-path) — every summand
                    // (DP value, idle prefix, window cost) is >= 0.
                    next[t as usize] = u64::try_from(total).expect("cost is non-negative");
                    parent[t as usize] = best_at;
                }
            }
        }
        opt = next;
        parents.push(parent);
    }

    // Trailing idle after the last task until T.
    let mut best_cost = INF;
    let mut best_end: Time = 0;
    for t in prefix_exec..=horizon {
        if opt[t as usize] < INF {
            let total = opt[t as usize] + idle_cost.window(t, horizon);
            if total < best_cost {
                best_cost = total;
                best_end = t;
            }
        }
    }
    assert!(best_cost < INF, "deadline below total execution time");

    // Reconstruct completion times.
    let mut start = vec![0 as Time; inst.node_count()];
    let mut end = best_end;
    for i in (0..n).rev() {
        let v = chain[i];
        start[v as usize] = end - inst.exec(v);
        let p = parents[i][end as usize];
        end = if i == 0 { 0 } else { p as Time };
    }
    Some((
        DpResult {
            cost: best_cost,
            schedule: Schedule::new(start),
        },
        cells,
    ))
}

/// Candidate end times for each task position per Appendix A.2: for
/// every block `[r, s]` containing position `u` and every boundary
/// `e ∈ E`, the end of `u` when the block starts or ends at `e`.
/// (Also drives the branch-and-bound's boundary-aligned candidate
/// restriction on single-chain instances — see [`crate::bnb`].)
pub(crate) fn candidate_end_times(
    chain: &[NodeId],
    inst: &Instance,
    profile: &PowerProfile,
) -> Vec<Vec<Time>> {
    let n = chain.len();
    let horizon = profile.deadline();
    let exec: Vec<Time> = chain.iter().map(|&v| inst.exec(v)).collect();
    // prefix[i] = Σ_{j<i} exec[j]
    let mut prefix = vec![0 as Time; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + exec[i];
    }
    let boundaries = profile.boundaries();
    let mut cand: Vec<Vec<Time>> = vec![Vec::new(); n];
    for r in 0..n {
        for s in r..n {
            // Block [r, s]: length prefix[s+1] - prefix[r].
            for &e in boundaries {
                for (u, c) in cand.iter_mut().enumerate().take(s + 1).skip(r) {
                    // end(u) relative to block start: prefix[u+1]-prefix[r].
                    let off_start = prefix[u + 1] - prefix[r];
                    // Start-aligned: block starts at e.
                    let t1 = e + off_start;
                    // End-aligned: block ends at e (end of task s at e).
                    let off_end = prefix[s + 1] - prefix[u + 1];
                    // Feasibility window of task u's end time.
                    let lo = prefix[u + 1];
                    let hi = horizon - (prefix[n] - prefix[u + 1]);
                    if t1 >= lo && t1 <= hi {
                        c.push(t1);
                    }
                    if let Some(t2) = e.checked_sub(off_end) {
                        if t2 >= lo && t2 <= hi {
                            c.push(t2);
                        }
                    }
                }
            }
        }
    }
    for c in &mut cand {
        c.sort_unstable();
        c.dedup();
    }
    cand
}

/// The fully polynomial DP: identical recurrence, but task ends range
/// over the `O(n²J)` candidate set per task (Lemma 4.2 guarantees an
/// optimal E-schedule exists within it).
pub fn dp_polynomial(inst: &Instance, profile: &PowerProfile) -> DpResult {
    // cawo-lint: allow(panic-path) — with no budget the budgeted DP
    // cannot time out, so it always returns Some.
    let (res, _) = dp_polynomial_budgeted(inst, profile, None).expect("no deadline given");
    res
}

/// [`dp_polynomial`] with a wall-clock deadline; see
/// [`dp_pseudo_budgeted`].
fn dp_polynomial_budgeted(
    inst: &Instance,
    profile: &PowerProfile,
    wall_deadline: Option<Instant>,
) -> Option<(DpResult, u64)> {
    let (chain, p_work) = single_chain(inst);
    let horizon = profile.deadline();
    let idle = inst.total_idle_power();
    let active = PrefixCost::new(profile, idle + p_work);
    let idle_cost = PrefixCost::new(profile, idle);

    let n = chain.len();
    let cand = candidate_end_times(&chain, inst, profile);
    assert!(
        cand.iter().all(|c| !c.is_empty()),
        "deadline below total execution time"
    );

    // DP over candidate lists. opt[i][k] = best cost with task i ending
    // at cand[i][k]; parent[i][k] = index into cand[i-1].
    let mut opt_prev: Vec<i128> = Vec::new();
    let mut parents: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut cells: u64 = 0;
    for i in 0..n {
        // cawo-lint: allow(wall-clock) — enforcing the opt-in time budget.
        if wall_deadline.is_some_and(|d| Instant::now() >= d) {
            return None;
        }
        cells += cand[i].len() as u64;
        let v = chain[i];
        let w = inst.exec(v);
        let cur = &cand[i];
        let mut opt_cur = vec![i128::MAX; cur.len()];
        let mut parent = vec![u32::MAX; cur.len()];
        if i == 0 {
            for (k, &t) in cur.iter().enumerate() {
                opt_cur[k] = idle_cost.window(0, t - w) as i128 + active.window(t - w, t) as i128;
                parent[k] = 0;
            }
        } else {
            let prev = &cand[i - 1];
            // Prefix minimum over opt_prev[j] - idle_cum(prev[j]).
            let mut j = 0usize;
            let mut best: i128 = i128::MAX;
            let mut best_at: u32 = u32::MAX;
            for (k, &t) in cur.iter().enumerate() {
                let x = t - w;
                while j < prev.len() && prev[j] <= x {
                    if opt_prev[j] < i128::MAX {
                        let key = opt_prev[j] - idle_cost.cum(prev[j]) as i128;
                        if key < best {
                            best = key;
                            best_at = j as u32;
                        }
                    }
                    j += 1;
                }
                if best_at != u32::MAX {
                    opt_cur[k] = best + idle_cost.cum(x) as i128 + active.window(x, t) as i128;
                    parent[k] = best_at;
                }
            }
        }
        opt_prev = opt_cur;
        parents.push(parent);
    }

    let mut best_cost = i128::MAX;
    let mut best_k = usize::MAX;
    for (k, &t) in cand[n - 1].iter().enumerate() {
        if opt_prev[k] < i128::MAX {
            let total = opt_prev[k] + idle_cost.window(t, horizon) as i128;
            if total < best_cost {
                best_cost = total;
                best_k = k;
            }
        }
    }
    assert!(
        best_k != usize::MAX,
        "no feasible completion — deadline too tight"
    );

    let mut start = vec![0 as Time; inst.node_count()];
    let mut k = best_k;
    for i in (0..n).rev() {
        let v = chain[i];
        let t = cand[i][k];
        start[v as usize] = t - inst.exec(v);
        if i > 0 {
            k = parents[i][k] as usize;
        }
    }
    Some((
        DpResult {
            // cawo-lint: allow(panic-path) — every summand entering
            // `best_cost` is >= 0.
            cost: Cost::try_from(best_cost).expect("cost is non-negative"),
            schedule: Schedule::new(start),
        },
        cells,
    ))
}

/// The uniprocessor dynamic programs as a [`Solver`]: optimal on
/// single-chain instances, [`SolveError::Unsupported`] otherwise.
#[derive(Debug, Clone, Copy)]
pub struct DpSolver {
    /// `true` runs the pseudo-polynomial `Opt(i, t)` table; `false`
    /// (the default) the E-schedule-restricted polynomial DP.
    pub pseudo: bool,
}

impl DpSolver {
    /// The polynomial (E-schedule candidate set) variant.
    pub fn polynomial() -> Self {
        DpSolver { pseudo: false }
    }

    /// The pseudo-polynomial (per-time-unit table) variant.
    pub fn pseudo() -> Self {
        DpSolver { pseudo: true }
    }
}

impl Solver for DpSolver {
    fn name(&self) -> &'static str {
        if self.pseudo {
            "dp-pseudo"
        } else {
            "dp"
        }
    }

    fn solve(
        &self,
        inst: &Instance,
        profile: &PowerProfile,
        budget: Budget,
    ) -> Result<SolveResult, SolveError> {
        require_feasible(inst, profile)?;
        crate::solver::single_chain(inst)?;
        let wall_deadline = budget.deadline_from_now();
        let run = if self.pseudo {
            dp_pseudo_budgeted(inst, profile, wall_deadline)
        } else {
            dp_polynomial_budgeted(inst, profile, wall_deadline)
        };
        Ok(match run {
            Some((res, cells)) => SolveResult {
                cost: res.cost,
                lower_bound: Some(res.cost),
                schedule: res.schedule,
                status: SolveStatus::Optimal,
                nodes: cells,
                stats: SolveStats::default(),
                basis: None,
            },
            None => {
                // The table was abandoned mid-build; there is no DP
                // incumbent, so fall back to the heuristic one.
                let (schedule, cost) = heuristic_incumbent(inst, profile);
                SolveResult {
                    schedule,
                    cost,
                    status: SolveStatus::TimedOut,
                    nodes: 0,
                    lower_bound: None,
                    stats: SolveStats::default(),
                    basis: None,
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cawo_core::carbon_cost;
    use cawo_core::enhanced::UnitInfo;
    use cawo_graph::dag::DagBuilder;

    /// Chain instance on one unit with given exec times and powers.
    fn chain_instance(exec: Vec<Time>, p_idle: u64, p_work: u64) -> Instance {
        let n = exec.len();
        let mut b = DagBuilder::new(n);
        for i in 1..n {
            b.add_edge(i as u32 - 1, i as u32);
        }
        Instance::from_raw(
            b.build().unwrap(),
            exec,
            vec![0; n],
            vec![UnitInfo {
                p_idle,
                p_work,
                is_link: false,
            }],
            0,
        )
    }

    #[test]
    fn solver_trait_wraps_both_dps() {
        let inst = chain_instance(vec![3, 2], 0, 4);
        let profile = PowerProfile::from_parts(vec![0, 3, 8, 12], vec![0, 4, 1]);
        for solver in [DpSolver::polynomial(), DpSolver::pseudo()] {
            let res = solver.solve(&inst, &profile, Budget::default()).unwrap();
            assert_eq!(res.status, SolveStatus::Optimal);
            assert_eq!(res.cost, carbon_cost(&inst, &res.schedule, &profile));
            assert_eq!(res.lower_bound, Some(res.cost));
            assert!(res.nodes > 0, "DP cells are reported");
        }
        assert_eq!(DpSolver::polynomial().name(), "dp");
        assert_eq!(DpSolver::pseudo().name(), "dp-pseudo");
    }

    #[test]
    fn solver_rejects_multi_unit_and_infeasible_instances() {
        let dag = DagBuilder::new(2).build().unwrap();
        let multi = Instance::from_raw(
            dag,
            vec![1, 1],
            vec![0, 1],
            vec![
                UnitInfo {
                    p_idle: 0,
                    p_work: 1,
                    is_link: false,
                },
                UnitInfo {
                    p_idle: 0,
                    p_work: 1,
                    is_link: false,
                },
            ],
            0,
        );
        let profile = PowerProfile::uniform(5, 1);
        assert!(matches!(
            DpSolver::polynomial().solve(&multi, &profile, Budget::default()),
            Err(SolveError::Unsupported(_))
        ));
        let uni = chain_instance(vec![4, 4], 0, 1);
        let tight = PowerProfile::uniform(5, 1); // deadline < total exec
        assert!(matches!(
            DpSolver::pseudo().solve(&uni, &tight, Budget::default()),
            Err(SolveError::Infeasible(_))
        ));
    }

    #[test]
    fn single_task_moves_to_green() {
        let inst = chain_instance(vec![4], 0, 10);
        let profile = PowerProfile::from_parts(vec![0, 6, 12], vec![0, 10]);
        for res in [
            dp_pseudo_polynomial(&inst, &profile),
            dp_polynomial(&inst, &profile),
        ] {
            assert_eq!(res.cost, 0, "task should run in the green window");
            assert!(res.schedule.start(0) >= 6);
            assert!(res.schedule.validate(&inst, 12).is_ok());
            assert_eq!(carbon_cost(&inst, &res.schedule, &profile), res.cost);
        }
    }

    #[test]
    fn two_tasks_split_across_green_windows() {
        // Two tasks of length 3; green windows [2,5) and [9,12).
        let inst = chain_instance(vec![3, 3], 0, 5);
        let profile = PowerProfile::from_parts(vec![0, 2, 5, 9, 12], vec![0, 5, 0, 5]);
        for res in [
            dp_pseudo_polynomial(&inst, &profile),
            dp_polynomial(&inst, &profile),
        ] {
            assert_eq!(res.cost, 0);
            assert_eq!(res.schedule.start(0), 2);
            assert_eq!(res.schedule.start(1), 9);
        }
    }

    #[test]
    fn idle_gap_cost_is_counted() {
        // Idle power 4, budget 1 everywhere: every time unit costs at
        // least 3, so the optimum is forced and includes idle periods.
        let inst = chain_instance(vec![2, 2], 4, 6);
        let profile = PowerProfile::from_parts(vec![0, 10], vec![1]);
        let ps = dp_pseudo_polynomial(&inst, &profile);
        let poly = dp_polynomial(&inst, &profile);
        // Any schedule: active 4 units at (4+6-1)=9 each, idle 6 units at
        // 3 each ⇒ 36 + 18 = 54.
        assert_eq!(ps.cost, 54);
        assert_eq!(poly.cost, 54);
        assert_eq!(carbon_cost(&inst, &ps.schedule, &profile), 54);
    }

    #[test]
    fn pseudo_and_polynomial_agree_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(314);
        for trial in 0..40 {
            let n = rng.gen_range(1..6);
            let exec: Vec<Time> = (0..n).map(|_| rng.gen_range(1..5)).collect();
            let total: Time = exec.iter().sum();
            let p_idle = rng.gen_range(0..3);
            let p_work = rng.gen_range(1..8);
            let inst = chain_instance(exec, p_idle, p_work);
            // Random 3-interval profile with slack 1.5–3x.
            let horizon = total + rng.gen_range(total / 2 + 1..=total * 2 + 2);
            let b1 = rng.gen_range(1..horizon);
            let b2 = rng.gen_range(b1 + 1..=horizon);
            let mut bounds = vec![0, b1, b2, horizon];
            bounds.dedup();
            let budgets: Vec<u64> = (0..bounds.len() - 1)
                .map(|_| rng.gen_range(0..10))
                .collect();
            let profile = PowerProfile::from_parts(bounds, budgets);
            let ps = dp_pseudo_polynomial(&inst, &profile);
            let poly = dp_polynomial(&inst, &profile);
            assert_eq!(ps.cost, poly.cost, "trial {trial}");
            assert_eq!(carbon_cost(&inst, &ps.schedule, &profile), ps.cost);
            assert_eq!(carbon_cost(&inst, &poly.schedule, &profile), poly.cost);
            assert!(ps.schedule.validate(&inst, profile.deadline()).is_ok());
            assert!(poly.schedule.validate(&inst, profile.deadline()).is_ok());
        }
    }

    #[test]
    fn dp_beats_or_matches_asap() {
        let inst = chain_instance(vec![3, 2, 4], 1, 7);
        let profile = PowerProfile::from_parts(vec![0, 5, 10, 20], vec![1, 8, 3]);
        let asap_cost = carbon_cost(&inst, &inst.asap_schedule(), &profile);
        let res = dp_polynomial(&inst, &profile);
        assert!(res.cost <= asap_cost);
    }

    #[test]
    fn candidate_end_times_cover_asap_and_alap() {
        let inst = chain_instance(vec![2, 3], 0, 1);
        let profile = PowerProfile::from_parts(vec![0, 10], vec![0]);
        let (chain, _) = single_chain(&inst);
        let cand = candidate_end_times(&chain, &inst, &profile);
        // ASAP ends: 2 and 5 (block start-aligned at 0).
        assert!(cand[0].contains(&2));
        assert!(cand[1].contains(&5));
        // ALAP ends: 7 and 10 (block end-aligned at T).
        assert!(cand[0].contains(&7));
        assert!(cand[1].contains(&10));
    }

    #[test]
    #[should_panic(expected = "one execution unit")]
    fn multi_unit_instance_rejected() {
        let dag = DagBuilder::new(2).build().unwrap();
        let inst = Instance::from_raw(
            dag,
            vec![1, 1],
            vec![0, 1],
            vec![
                UnitInfo {
                    p_idle: 0,
                    p_work: 1,
                    is_link: false,
                },
                UnitInfo {
                    p_idle: 0,
                    p_work: 1,
                    is_link: false,
                },
            ],
            0,
        );
        let profile = PowerProfile::uniform(5, 1);
        let _ = dp_polynomial(&inst, &profile);
    }
}

//! `lp_parity` — the differential suite holding the two LP engines to
//! the same answers:
//!
//! * the dense two-phase tableau (`cawo_exact::simplex::solve_lp`, the
//!   oracle) and the sparse revised simplex (`cawo_lp`) solve the
//!   *identical* model (via `sparse_from_lp_problem`) on randomized
//!   bounded LPs and on the Appendix A.4 `lp_relaxation` fixtures, and
//!   must report bit-comparable objectives (≤ 1e-6 relative),
//! * presolve must not change objectives,
//! * warm starts must equal cold starts,
//! * the sparse MILP / LP solvers must agree with their dense oracle
//!   counterparts (and the combinatorial `bnb`) on the MILP fixtures.
//!
//! Run by name in CI: `cargo test -p cawo_exact --test lp_parity`.

// Test code may unwrap freely (policy: clippy.toml); integration-test
// crates need the explicit allow because they are not cfg(test).
#![allow(clippy::unwrap_used)]
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cawo_core::enhanced::UnitInfo;
use cawo_core::Instance;
use cawo_exact::milp::lp_relaxation;
use cawo_exact::simplex::{solve_lp, LpCmp, LpOutcome, LpProblem};
use cawo_exact::{
    sparse_from_lp_problem, Budget, IlpModel, LpDenseSolver, LpSolver, MilpDenseSolver, MilpSolver,
    SolveStatus, Solver, SparseA4Model,
};
use cawo_graph::dag::DagBuilder;
use cawo_lp::{presolve, LpStatus, SimplexOptions, SimplexSolver};
use cawo_platform::{PowerProfile, Time};

/// Single-unit chain instance (the shape all seven-plus solvers accept).
fn chain(exec: &[Time], p_idle: u64, p_work: u64) -> Instance {
    let n = exec.len();
    let mut b = DagBuilder::new(n);
    for i in 1..n {
        b.add_edge(i as u32 - 1, i as u32);
    }
    Instance::from_raw(
        b.build().unwrap(),
        exec.to_vec(),
        vec![0; n],
        vec![UnitInfo {
            p_idle,
            p_work,
            is_link: false,
        }],
        0,
    )
}

/// Random bounded LP over `x ≥ 0` with every upper bound and row stated
/// explicitly — both engines receive the exact same model. Feasible by
/// construction (a witness point generates the right-hand sides) and
/// bounded (all variables boxed).
fn random_bounded_lp(rng: &mut StdRng, n: usize, m: usize) -> LpProblem {
    let mut p = LpProblem::new(n);
    let witness: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..4.0)).collect();
    for (j, &wj) in witness.iter().enumerate() {
        p.objective[j] = rng.gen_range(-5.0..5.0);
        p.add_upper_bound(j, wj + rng.gen_range(0.0..4.0));
    }
    for _ in 0..m {
        let k = rng.gen_range(1..=3.min(n));
        let mut terms: Vec<(usize, f64)> = Vec::new();
        for _ in 0..k {
            terms.push((rng.gen_range(0..n), rng.gen_range(-4.0..4.0)));
        }
        let lhs: f64 = terms.iter().map(|&(j, a)| a * witness[j]).sum();
        match rng.gen_range(0..3) {
            0 => p.add_row(terms, LpCmp::Le, lhs + rng.gen_range(0.0..2.0)),
            1 => p.add_row(terms, LpCmp::Ge, lhs - rng.gen_range(0.0..2.0)),
            _ => p.add_row(terms, LpCmp::Eq, lhs),
        }
    }
    p
}

fn dense_objective(p: &LpProblem) -> f64 {
    match solve_lp(p) {
        LpOutcome::Optimal { objective, .. } => objective,
        other => panic!("dense oracle failed on a feasible bounded LP: {other:?}"),
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn engines_agree_on_random_bounded_lps() {
    let mut rng = StdRng::seed_from_u64(0x1f2e3d4c);
    for trial in 0..100 {
        let n = rng.gen_range(1..8);
        let m = rng.gen_range(0..10);
        let p = random_bounded_lp(&mut rng, n, m);
        let dense = dense_objective(&p);
        let sparse_model = sparse_from_lp_problem(&p);
        let sparse = cawo_lp::solve(&sparse_model, &SimplexOptions::default());
        assert_eq!(sparse.status, LpStatus::Optimal, "trial {trial}");
        assert!(
            close(dense, sparse.objective),
            "trial {trial}: dense {dense} vs sparse {}",
            sparse.objective
        );
        // Presolve must not move the objective either.
        let pre = presolve(&sparse_model).expect("feasible by construction");
        let reduced = cawo_lp::solve(&pre.lp, &SimplexOptions::default());
        assert_eq!(reduced.status, LpStatus::Optimal, "trial {trial}");
        assert!(
            close(dense, reduced.objective + pre.objective_offset()),
            "trial {trial}: dense {dense} vs presolved {}",
            reduced.objective + pre.objective_offset()
        );
    }
}

#[test]
fn engines_agree_on_milp_fixture_relaxations() {
    let mut rng = StdRng::seed_from_u64(0xa4a4a4);
    for trial in 0..12 {
        let n = rng.gen_range(1..4);
        let exec: Vec<Time> = (0..n).map(|_| rng.gen_range(1..4)).collect();
        let total: Time = exec.iter().sum();
        let inst = chain(&exec, rng.gen_range(0..3), rng.gen_range(1..6));
        let horizon = total + rng.gen_range(1..4);
        let mid = rng.gen_range(1..horizon);
        let profile = PowerProfile::from_parts(
            vec![0, mid, horizon],
            vec![rng.gen_range(0..8), rng.gen_range(0..8)],
        );
        let model = IlpModel::build(&inst, &profile);
        let (dense_lp, _) = lp_relaxation(&model);
        let dense = dense_objective(&dense_lp);
        let sparse = cawo_lp::solve(
            &sparse_from_lp_problem(&dense_lp),
            &SimplexOptions::default(),
        );
        assert_eq!(sparse.status, LpStatus::Optimal, "trial {trial}");
        assert!(
            close(dense, sparse.objective),
            "trial {trial}: dense {dense} vs sparse {} on the A.4 relaxation",
            sparse.objective
        );
    }
}

#[test]
fn warm_start_equals_cold_start_on_milp_fixtures() {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for trial in 0..10 {
        let n = rng.gen_range(2..4);
        let exec: Vec<Time> = (0..n).map(|_| rng.gen_range(1..4)).collect();
        let total: Time = exec.iter().sum();
        let inst = chain(&exec, 1, rng.gen_range(1..6));
        let horizon = total + rng.gen_range(2..5);
        let profile = PowerProfile::from_parts(
            vec![0, horizon / 2, horizon],
            vec![rng.gen_range(0..6), rng.gen_range(0..6)],
        );
        let model = IlpModel::build(&inst, &profile);
        let (dense_lp, ints) = lp_relaxation(&model);
        let sparse_model = sparse_from_lp_problem(&dense_lp);
        let mut solver = SimplexSolver::new(&sparse_model);
        let cold = solver.solve(&SimplexOptions::default());
        assert_eq!(cold.status, LpStatus::Optimal, "trial {trial}");

        // Warm re-solve of the unchanged model: zero pivots.
        let resolved = solver.solve(&SimplexOptions::default());
        assert_eq!(resolved.iterations, 0, "trial {trial}");
        assert!(close(cold.objective, resolved.objective), "trial {trial}");

        // Branch like the MILP does (fix a binary to 0) and compare
        // warm vs cold on the modified model.
        let j = ints[rng.gen_range(0..ints.len())];
        solver.set_col_bounds(j, 0.0, 0.0);
        let warm = solver.solve(&SimplexOptions::default());
        let mut modified = sparse_model.clone();
        modified.set_bounds(j, 0.0, 0.0);
        let cold2 = cawo_lp::solve(&modified, &SimplexOptions::default());
        assert_eq!(warm.status, cold2.status, "trial {trial}");
        if cold2.status == LpStatus::Optimal {
            assert!(
                close(warm.objective, cold2.objective),
                "trial {trial}: warm {} vs cold {}",
                warm.objective,
                cold2.objective
            );
        }
    }
}

#[test]
fn sparse_solvers_agree_with_dense_oracles_and_bnb() {
    let mut rng = StdRng::seed_from_u64(0xbeef);
    for trial in 0..8 {
        let n = rng.gen_range(1..4);
        let exec: Vec<Time> = (0..n).map(|_| rng.gen_range(1..4)).collect();
        let total: Time = exec.iter().sum();
        let inst = chain(&exec, rng.gen_range(0..2), rng.gen_range(1..6));
        let horizon = total + rng.gen_range(1..4);
        let mid = rng.gen_range(1..horizon);
        let profile = PowerProfile::from_parts(
            vec![0, mid, horizon],
            vec![rng.gen_range(0..8), rng.gen_range(0..8)],
        );
        let budget = Budget::default();
        let bnb = cawo_exact::solve_exact(&inst, &profile, Default::default());
        assert!(bnb.optimal, "trial {trial}");

        let sparse_milp = MilpSolver::default()
            .solve(&inst, &profile, budget)
            .unwrap();
        assert_eq!(sparse_milp.status, SolveStatus::Optimal, "trial {trial}");
        assert_eq!(sparse_milp.cost, bnb.cost, "trial {trial}: sparse milp");

        let dense_milp = MilpDenseSolver::default()
            .solve(&inst, &profile, budget)
            .unwrap();
        assert_eq!(dense_milp.cost, bnb.cost, "trial {trial}: dense milp");

        // Both LP bounds are valid and the solvers report honestly.
        for (label, res) in [
            ("lp", LpSolver::default().solve(&inst, &profile, budget)),
            (
                "lp-dense",
                LpDenseSolver::default().solve(&inst, &profile, budget),
            ),
        ] {
            let res = res.unwrap();
            let lb = res.lower_bound.unwrap_or(0);
            assert!(
                lb <= bnb.cost,
                "trial {trial}: {label} bound {lb} exceeds optimum {}",
                bnb.cost
            );
            assert!(res.cost >= bnb.cost, "trial {trial}: {label}");
        }

        // The sparse model certifies the optimal schedule at the
        // optimal cost (the scaled-up `ilp` certification path).
        let sparse = SparseA4Model::build(&inst, &profile);
        assert_eq!(
            sparse
                .check_schedule(&inst, &profile, &bnb.schedule)
                .unwrap(),
            bnb.cost,
            "trial {trial}"
        );
    }
}

//! Differential property suite over the unified [`Solver`] interface:
//! every registered solver, on random instances, must
//!
//! * return a schedule that validates against the deadline,
//! * report a `cost` equal to `CostEngine::total_cost` of that schedule
//!   (the dense oracle — i.e. no solver may mis-price its own output),
//! * never claim a lower bound above its own cost,
//! * and all solvers concluding [`SolveStatus::Optimal`] must agree on
//!   one optimal cost, which no heuristic may beat.

// Test code may unwrap freely (policy: clippy.toml); integration-test
// crates need the explicit allow because they are not cfg(test).
#![allow(clippy::unwrap_used)]
use proptest::prelude::*;

use cawo_core::enhanced::UnitInfo;
use cawo_core::{CostEngine, DenseGrid, Instance, Variant};
use cawo_exact::{Budget, SolveError, SolveStatus, SolverKind};
use cawo_graph::dag::DagBuilder;
use cawo_platform::{PowerProfile, Time};

/// Single-unit chain instance.
fn chain(exec: &[Time], p_idle: u64, p_work: u64) -> Instance {
    let n = exec.len();
    let mut b = DagBuilder::new(n);
    for i in 1..n {
        b.add_edge(i as u32 - 1, i as u32);
    }
    Instance::from_raw(
        b.build().unwrap(),
        exec.to_vec(),
        vec![0; n],
        vec![UnitInfo {
            p_idle,
            p_work,
            is_link: false,
        }],
        0,
    )
}

/// Profile with the given budgets spread over `horizon`.
fn spread_profile(horizon: Time, budgets: &[u64]) -> PowerProfile {
    let j = budgets.len() as u64;
    let mut bounds = vec![0];
    for k in 1..=j {
        let t = horizon * k / j;
        if t > *bounds.last().unwrap() {
            bounds.push(t);
        }
    }
    let m = bounds.len() - 1;
    PowerProfile::from_parts(bounds, budgets[..m].to_vec())
}

/// Runs every registered solver and applies the shared contract checks;
/// returns the optimal cost when at least one solver proved one.
fn check_all_solvers(
    inst: &Instance,
    profile: &PowerProfile,
    budget: Budget,
) -> Result<Option<u64>, TestCaseError> {
    let mut optimal: Option<(SolverKind, u64)> = None;
    let mut feasible_costs: Vec<(SolverKind, u64)> = Vec::new();
    for kind in SolverKind::ALL {
        match kind.build().solve(inst, profile, budget) {
            Ok(res) => {
                prop_assert!(
                    res.schedule.validate(inst, profile.deadline()).is_ok(),
                    "{kind}: invalid schedule"
                );
                let engine_cost = DenseGrid::build(inst, &res.schedule, profile).total_cost();
                prop_assert_eq!(
                    res.cost,
                    engine_cost,
                    "{} mis-priced its own schedule",
                    kind
                );
                if let Some(lb) = res.lower_bound {
                    prop_assert!(
                        lb <= res.cost,
                        "{kind}: lower bound {lb} > cost {}",
                        res.cost
                    );
                }
                match res.status {
                    SolveStatus::Optimal => match optimal {
                        None => optimal = Some((kind, res.cost)),
                        Some((first, c)) => prop_assert_eq!(
                            c,
                            res.cost,
                            "{} and {} disagree on the optimum",
                            first,
                            kind
                        ),
                    },
                    SolveStatus::Feasible | SolveStatus::TimedOut => {
                        feasible_costs.push((kind, res.cost));
                    }
                }
            }
            // Declining an instance is part of the contract; crashing
            // or mis-reporting is not.
            Err(SolveError::Unsupported(_)) => {}
            Err(SolveError::Infeasible(m)) => {
                prop_assert!(false, "{kind}: spurious infeasibility: {m}")
            }
        }
    }
    if let Some((_, opt)) = optimal {
        // No inexact result may beat a proven optimum.
        for (kind, c) in &feasible_costs {
            prop_assert!(*c >= opt, "{kind} reported {c} below the optimum {opt}");
        }
    }
    Ok(optimal.map(|(_, c)| c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Uniprocessor chains are the regime where *all seven* solvers
    // apply (instances are kept tiny so even the simplex-backed MILP
    // terminates).
    #[test]
    fn every_solver_honours_the_contract_on_chains(
        exec in proptest::collection::vec(1u64..3, 1..3),
        p_idle in 0u64..2,
        p_work in 1u64..5,
        slack in 1u64..4,
        budgets in proptest::collection::vec(0u64..8, 1..3),
    ) {
        let inst = chain(&exec, p_idle, p_work);
        let total: Time = exec.iter().sum();
        let profile = spread_profile(total + slack, &budgets);
        let optimal = check_all_solvers(&inst, &profile, Budget::nodes(2_000_000))?;
        // On these tiny chains bnb and both DPs always finish.
        prop_assert!(optimal.is_some(), "no solver proved optimality");
        // The heuristics never beat the proven optimum.
        let opt = optimal.unwrap();
        for v in [Variant::Asap, Variant::PressWRLs] {
            let s = v.run(&inst, &profile);
            let c = DenseGrid::build(&inst, &s, &profile).total_cost();
            prop_assert!(c >= opt, "{v} beat the optimum");
        }
    }

    // Random multi-unit DAGs: the uniprocessor methods must decline
    // cleanly while the general-purpose solvers stay in agreement.
    #[test]
    fn solvers_honour_the_contract_on_multiunit_dags(
        n in 2usize..5,
        edge_bits in any::<u32>(),
        exec in proptest::collection::vec(1u64..3, 5),
        units in proptest::collection::vec((0u64..2, 1u64..5), 2),
        slack in 1u64..4,
        budgets in proptest::collection::vec(0u64..8, 2..4),
    ) {
        let mut b = DagBuilder::new(n);
        let mut bit = 0;
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                if edge_bits >> (bit % 32) & 1 == 1 {
                    b.add_edge(u, v);
                }
                bit += 1;
            }
        }
        let unit_infos: Vec<UnitInfo> = units
            .iter()
            .map(|&(i, w)| UnitInfo { p_idle: i, p_work: w, is_link: false })
            .collect();
        let unit_of: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let inst = Instance::from_raw(
            b.build().unwrap(),
            exec[..n].to_vec(),
            unit_of,
            unit_infos,
            0,
        );
        let profile = spread_profile(inst.asap_makespan() + slack, &budgets);
        let optimal = check_all_solvers(&inst, &profile, Budget::nodes(2_000_000))?;
        prop_assert!(optimal.is_some(), "bnb should prove these tiny instances");
        // Both tasks sit on two units, so the uniprocessor methods must
        // have declined rather than answered.
        for kind in [SolverKind::Dp, SolverKind::DpPseudo, SolverKind::Eschedule] {
            prop_assert!(matches!(
                kind.build().solve(&inst, &profile, Budget::default()),
                Err(SolveError::Unsupported(_))
            ));
        }
    }

    // A wall-clock budget of zero must degrade every solver to a
    // fast, honest non-optimal answer — never a hang or a panic.
    #[test]
    fn zero_time_budget_degrades_gracefully(
        exec in proptest::collection::vec(1u64..4, 2..4),
        budgets in proptest::collection::vec(0u64..8, 1..3),
        slack in 2u64..6,
    ) {
        let inst = chain(&exec, 1, 3);
        let total: Time = exec.iter().sum();
        let profile = spread_profile(total + slack, &budgets);
        let budget = Budget {
            node_limit: 1,
            time_limit: Some(std::time::Duration::ZERO),
        };
        for kind in SolverKind::ALL {
            match kind.build().solve(&inst, &profile, budget) {
                Ok(res) => {
                    prop_assert!(res.schedule.validate(&inst, profile.deadline()).is_ok());
                    prop_assert_eq!(
                        res.cost,
                        DenseGrid::build(&inst, &res.schedule, &profile).total_cost()
                    );
                }
                Err(SolveError::Unsupported(_)) => {}
                Err(SolveError::Infeasible(m)) => {
                    prop_assert!(false, "{kind}: spurious infeasibility: {m}")
                }
            }
        }
    }
}

//! Validity and strength checks for the root cutting planes.
//!
//! The only thing a cut is ever allowed to remove is *fractional*
//! points: every integer-feasible schedule must stay feasible in the
//! augmented model (checked by full enumeration on small instances),
//! the augmented root bound must never decrease, and the cut-driven
//! `milp` solver must keep agreeing with the combinatorial
//! branch-and-bound and the dense-tableau oracle.

// Test code may unwrap freely (policy: clippy.toml); integration-test
// crates need the explicit allow because they are not cfg(test).
#![allow(clippy::unwrap_used)]
use cawo_core::enhanced::UnitInfo;
use cawo_core::{carbon_cost, Instance, Schedule};
use cawo_exact::{
    root_cut_loop, Budget, MilpDenseSolver, MilpSolver, SolveStatus, Solver, SolverKind,
    SparseA4Model,
};
use cawo_graph::dag::DagBuilder;
use cawo_lp::{LpStatus, SimplexOptions, SimplexSolver};
use cawo_platform::{PowerProfile, Time};

fn chain(exec: &[Time], p_idle: u64, p_work: u64) -> Instance {
    let n = exec.len();
    let mut b = DagBuilder::new(n);
    for i in 1..n {
        b.add_edge(i as u32 - 1, i as u32);
    }
    Instance::from_raw(
        b.build().unwrap(),
        exec.to_vec(),
        vec![0; n],
        vec![UnitInfo {
            p_idle,
            p_work,
            is_link: false,
        }],
        0,
    )
}

fn two_unit_pair(exec: [Time; 2], p_idle: u64, p_work: u64) -> Instance {
    let dag = DagBuilder::new(2).build().unwrap();
    let unit = UnitInfo {
        p_idle,
        p_work,
        is_link: false,
    };
    Instance::from_raw(dag, exec.to_vec(), vec![0, 1], vec![unit, unit], 0)
}

/// Three independent unit-length tasks on three units with two time
/// slots and a budget that admits two concurrent tasks but not three.
/// Pigeonhole forces every integer schedule to pay for one overlap
/// (optimum 1), yet the LP spreads start mass to `Σ γ_t = budget`
/// exactly and bounds at 0 — the shape the cover cuts exist for.
fn pigeonhole_triple() -> (Instance, PowerProfile) {
    let dag = DagBuilder::new(3).build().unwrap();
    let unit = UnitInfo {
        p_idle: 0,
        p_work: 2,
        is_link: false,
    };
    let inst = Instance::from_raw(dag, vec![1, 1, 1], vec![0, 1, 2], vec![unit, unit, unit], 0);
    let profile = PowerProfile::from_parts(vec![0, 2], vec![3]);
    (inst, profile)
}

/// Every deadline-valid schedule of a small instance, by enumeration
/// over the model's start windows.
fn enumerate_schedules(inst: &Instance, model: &SparseA4Model, horizon: Time) -> Vec<Schedule> {
    let n = inst.node_count();
    let mut out = Vec::new();
    let mut starts = vec![0 as Time; n];
    fn rec(
        inst: &Instance,
        model: &SparseA4Model,
        horizon: Time,
        v: usize,
        starts: &mut Vec<Time>,
        out: &mut Vec<Schedule>,
    ) {
        if v == starts.len() {
            let s = Schedule::new(starts.clone());
            if s.validate(inst, horizon).is_ok() {
                out.push(s);
            }
            return;
        }
        let (lo, hi) = model.window(v as u32);
        for t in lo..=hi {
            starts[v] = t;
            rec(inst, model, horizon, v + 1, starts, out);
        }
    }
    rec(inst, model, horizon, 0, &mut starts, &mut out);
    out
}

/// Runs the root cut loop on an instance and asserts the two core cut
/// contracts: no integer point is cut off, and the bound only rises.
fn check_cut_contracts(inst: &Instance, profile: &PowerProfile) -> (f64, f64, u32) {
    let mut model = SparseA4Model::build(inst, profile);
    let mut simplex = SimplexSolver::new(&model.lp);
    let root = simplex.solve(&SimplexOptions::default());
    assert_eq!(root.status, LpStatus::Optimal);
    let before = root.objective;
    let (after, stats) = root_cut_loop(&mut model, inst, profile, &mut simplex, root, None);
    assert_eq!(after.status, LpStatus::Optimal);
    assert!(
        after.objective >= before - 1e-7,
        "cuts weakened the bound: {} -> {}",
        before,
        after.objective
    );
    // Full enumeration: every valid schedule must still satisfy every
    // row of the augmented model (`check_schedule` verifies all rows,
    // appended cuts included) and the bound must not exceed any cost.
    let schedules = enumerate_schedules(inst, &model, profile.deadline());
    assert!(!schedules.is_empty(), "deadline-feasible instance");
    for sched in &schedules {
        let cost = model
            .check_schedule(inst, profile, sched)
            .expect("integer point cut off by a root cut");
        assert_eq!(cost, carbon_cost(inst, sched, profile));
        assert!(
            after.objective <= cost as f64 + 1e-6,
            "augmented bound {} exceeds integer cost {cost}",
            after.objective
        );
    }
    (before, after.objective, stats.cuts)
}

/// (exec times, idle power, work power, interval bounds, budgets).
type ChainCase = (&'static [Time], u64, u64, Vec<Time>, Vec<u64>);

#[test]
fn cuts_never_remove_integer_points_on_chains() {
    let cases: &[ChainCase] = &[
        (&[2, 3], 1, 4, vec![0, 4, 10], vec![3, 6]),
        (&[2, 2], 0, 5, vec![0, 2, 4, 8], vec![5, 0, 5]),
        (&[3, 2], 0, 5, vec![0, 3, 8, 12], vec![0, 5, 1]),
        (&[1, 2, 1], 1, 3, vec![0, 3, 6, 9], vec![2, 6, 2]),
    ];
    for (exec, p_idle, p_work, bounds, budgets) in cases {
        let inst = chain(exec, *p_idle, *p_work);
        let profile = PowerProfile::from_parts(bounds.clone(), budgets.clone());
        check_cut_contracts(&inst, &profile);
    }
}

#[test]
fn cover_cuts_lift_the_zero_bound_under_contention() {
    let (inst, profile) = pigeonhole_triple();
    let (before, after, cuts) = check_cut_contracts(&inst, &profile);
    assert!(
        before < 0.5,
        "aggregated relaxation should dodge the budget, got {before}"
    );
    assert!(cuts > 0, "contended instance separated no cuts");
    assert!(
        after > before + 1e-6,
        "cover cuts did not lift the bound: {before} -> {after}"
    );
    let milp = MilpSolver::default()
        .solve(&inst, &profile, Budget::default())
        .unwrap();
    assert_eq!(milp.status, SolveStatus::Optimal);
    assert_eq!(milp.cost, 1, "pigeonhole overlap pays exactly 1");
    assert!(after <= milp.cost as f64 + 1e-6);
    assert!(milp.stats.cuts > 0, "milp root pass separated no cuts");
}

#[test]
fn milp_with_cuts_matches_dense_oracle_and_bnb() {
    let cases: &[(Instance, PowerProfile)] = &[
        (
            chain(&[2, 3], 1, 4),
            PowerProfile::from_parts(vec![0, 4, 10], vec![3, 6]),
        ),
        (
            chain(&[2, 2], 0, 5),
            PowerProfile::from_parts(vec![0, 2, 4, 8], vec![5, 0, 5]),
        ),
        (
            two_unit_pair([3, 3], 1, 2),
            PowerProfile::from_parts(vec![0, 4], vec![4]),
        ),
        (
            two_unit_pair([2, 2], 0, 3),
            PowerProfile::from_parts(vec![0, 5], vec![3]),
        ),
        pigeonhole_triple(),
    ];
    for (inst, profile) in cases {
        let milp = MilpSolver::default()
            .solve(inst, profile, Budget::default())
            .unwrap();
        let dense = MilpDenseSolver::default()
            .solve(inst, profile, Budget::default())
            .unwrap();
        let bnb = SolverKind::Bnb
            .build()
            .solve(inst, profile, Budget::default())
            .unwrap();
        assert_eq!(milp.status, SolveStatus::Optimal);
        assert_eq!(dense.status, SolveStatus::Optimal);
        assert_eq!(bnb.status, SolveStatus::Optimal);
        assert_eq!(milp.cost, dense.cost);
        assert_eq!(milp.cost, bnb.cost);
        assert_eq!(milp.lower_bound, Some(milp.cost));
        // The stats plumbing must actually flow: the sparse engine
        // reports its pricing rule (iteration counts can legitimately
        // be 0 when the incumbent crash basis is already optimal).
        assert_eq!(milp.stats.pricing, "devex");
    }
}

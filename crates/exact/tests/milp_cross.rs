//! Cross-validation of the three exact methods on the same instances:
//! the MILP solver on the literal Appendix A.4 model, the combinatorial
//! branch-and-bound, and (single-unit cases) the uniprocessor DP must
//! all report the same optimal carbon cost.

// Test code may unwrap freely (policy: clippy.toml); integration-test
// crates need the explicit allow because they are not cfg(test).
#![allow(clippy::unwrap_used)]
use cawo_core::enhanced::UnitInfo;
use cawo_core::Instance;
use cawo_exact::milp::{solve_ilp_model, MilpConfig, MilpOutcome};
use cawo_exact::{dp_polynomial, solve_exact, BnbConfig, IlpModel};
use cawo_graph::dag::DagBuilder;
use cawo_platform::{PowerProfile, Time};

fn chain(exec: &[Time], p_idle: u64, p_work: u64) -> Instance {
    let n = exec.len();
    let mut b = DagBuilder::new(n);
    for i in 1..n {
        b.add_edge(i as u32 - 1, i as u32);
    }
    Instance::from_raw(
        b.build().unwrap(),
        exec.to_vec(),
        vec![0; n],
        vec![UnitInfo {
            p_idle,
            p_work,
            is_link: false,
        }],
        0,
    )
}

fn solve_all_ways(inst: &Instance, profile: &PowerProfile) -> (u64, u64) {
    let bnb = solve_exact(inst, profile, BnbConfig::default());
    assert!(
        bnb.optimal,
        "combinatorial search must finish on tiny instances"
    );
    let model = IlpModel::build(inst, profile);
    let milp = solve_ilp_model(
        &model,
        MilpConfig {
            node_limit: 500_000,
            ..MilpConfig::default()
        },
    );
    let milp_obj = match milp {
        MilpOutcome::Optimal { objective, .. } => objective.round() as u64,
        other => panic!("MILP did not prove optimality: {other:?}"),
    };
    (bnb.cost, milp_obj)
}

#[test]
fn milp_matches_bnb_single_task() {
    // One task of length 2, green window in the middle.
    let inst = chain(&[2], 0, 4);
    let profile = PowerProfile::from_parts(vec![0, 2, 4, 6], vec![0, 4, 0]);
    let (bnb, milp) = solve_all_ways(&inst, &profile);
    assert_eq!(bnb, 0, "task fits the green window exactly");
    assert_eq!(milp, bnb);
}

#[test]
fn milp_matches_bnb_chain_two_tasks() {
    let inst = chain(&[2, 1], 1, 3);
    let profile = PowerProfile::from_parts(vec![0, 3, 6], vec![2, 5]);
    let (bnb, milp) = solve_all_ways(&inst, &profile);
    assert_eq!(milp, bnb);
    // And the uniprocessor DP agrees too.
    let dp = dp_polynomial(&inst, &profile);
    assert_eq!(dp.cost, bnb);
}

#[test]
fn milp_matches_bnb_two_units() {
    // Two independent tasks on separate units; budget fits one at a time.
    let dag = DagBuilder::new(2).build().unwrap();
    let inst = Instance::from_raw(
        dag,
        vec![2, 2],
        vec![0, 1],
        vec![
            UnitInfo {
                p_idle: 0,
                p_work: 3,
                is_link: false,
            },
            UnitInfo {
                p_idle: 0,
                p_work: 3,
                is_link: false,
            },
        ],
        0,
    );
    let profile = PowerProfile::from_parts(vec![0, 5], vec![3]);
    let (bnb, milp) = solve_all_ways(&inst, &profile);
    assert_eq!(bnb, 0, "serialising both tasks avoids all brown power");
    assert_eq!(milp, bnb);
}

#[test]
fn milp_matches_bnb_forced_brown() {
    // Tight deadline forces overlap ⇒ positive optimal cost.
    let dag = DagBuilder::new(2).build().unwrap();
    let inst = Instance::from_raw(
        dag,
        vec![3, 3],
        vec![0, 1],
        vec![
            UnitInfo {
                p_idle: 1,
                p_work: 2,
                is_link: false,
            },
            UnitInfo {
                p_idle: 1,
                p_work: 2,
                is_link: false,
            },
        ],
        0,
    );
    // Horizon 4: the two length-3 tasks must overlap >= 2 units.
    let profile = PowerProfile::from_parts(vec![0, 4], vec![4]);
    let (bnb, milp) = solve_all_ways(&inst, &profile);
    assert!(bnb > 0);
    assert_eq!(milp, bnb);
}

#[test]
fn milp_respects_precedence() {
    // Chain with a green window too early for the second task: the ILP's
    // (12) must forbid starting task 1 before task 0 ends.
    let inst = chain(&[2, 2], 0, 5);
    let profile = PowerProfile::from_parts(vec![0, 2, 4, 6], vec![5, 0, 5]);
    let (bnb, milp) = solve_all_ways(&inst, &profile);
    // Optimal: task 0 in [0,2) green, task 1 in [4,6) green ⇒ 0.
    assert_eq!(bnb, 0);
    assert_eq!(milp, bnb);
}

//! Property-based tests tying the exact methods together: the two DPs,
//! the branch-and-bound and the ILP checker must all agree.

// Test code may unwrap freely (policy: clippy.toml); integration-test
// crates need the explicit allow because they are not cfg(test).
#![allow(clippy::unwrap_used)]
use proptest::prelude::*;

use cawo_core::enhanced::UnitInfo;
use cawo_core::{carbon_cost, Instance, Variant};
use cawo_exact::{
    check_schedule_against_ilp, dp_polynomial, dp_pseudo_polynomial, solve_exact, BnbConfig,
};
use cawo_graph::dag::DagBuilder;
use cawo_platform::{PowerProfile, Time};

/// Single-unit chain instance.
fn chain(exec: &[Time], p_idle: u64, p_work: u64) -> Instance {
    let n = exec.len();
    let mut b = DagBuilder::new(n);
    for i in 1..n {
        b.add_edge(i as u32 - 1, i as u32);
    }
    Instance::from_raw(
        b.build().unwrap(),
        exec.to_vec(),
        vec![0; n],
        vec![UnitInfo {
            p_idle,
            p_work,
            is_link: false,
        }],
        0,
    )
}

/// Profile with the given budgets spread over `horizon`.
fn spread_profile(horizon: Time, budgets: &[u64]) -> PowerProfile {
    let j = budgets.len() as u64;
    let mut bounds = vec![0];
    for k in 1..=j {
        let t = horizon * k / j;
        if t > *bounds.last().unwrap() {
            bounds.push(t);
        }
    }
    let m = bounds.len() - 1;
    PowerProfile::from_parts(bounds, budgets[..m].to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dps_and_bnb_agree_on_chains(
        exec in proptest::collection::vec(1u64..5, 1..5),
        p_idle in 0u64..3,
        p_work in 1u64..8,
        slack in 1u64..8,
        budgets in proptest::collection::vec(0u64..12, 1..5),
    ) {
        let inst = chain(&exec, p_idle, p_work);
        let total: Time = exec.iter().sum();
        let profile = spread_profile(total + slack, &budgets);
        let pseudo = dp_pseudo_polynomial(&inst, &profile);
        let poly = dp_polynomial(&inst, &profile);
        let bnb = solve_exact(&inst, &profile, BnbConfig::default());
        prop_assert!(bnb.optimal);
        prop_assert_eq!(pseudo.cost, poly.cost);
        prop_assert_eq!(poly.cost, bnb.cost);
        // Reconstructed schedules actually achieve the claimed costs.
        prop_assert_eq!(carbon_cost(&inst, &pseudo.schedule, &profile), pseudo.cost);
        prop_assert_eq!(carbon_cost(&inst, &poly.schedule, &profile), poly.cost);
        prop_assert!(poly.schedule.validate(&inst, profile.deadline()).is_ok());
        prop_assert!(pseudo.schedule.validate(&inst, profile.deadline()).is_ok());
    }

    #[test]
    fn bnb_lower_bounds_heuristics_on_random_instances(
        n in 2usize..6,
        edge_bits in any::<u32>(),
        exec in proptest::collection::vec(1u64..4, 6),
        units in proptest::collection::vec((0u64..2, 1u64..6), 2),
        unit_bits in any::<u32>(),
        slack in 1u64..6,
        budgets in proptest::collection::vec(0u64..10, 2..4),
    ) {
        // Random forward DAG from bitmask.
        let mut b = DagBuilder::new(n);
        let mut bit = 0;
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                if edge_bits >> (bit % 32) & 1 == 1 {
                    b.add_edge(u, v);
                }
                bit += 1;
            }
        }
        let unit_infos: Vec<UnitInfo> = units
            .iter()
            .map(|&(i, w)| UnitInfo { p_idle: i, p_work: w, is_link: false })
            .collect();
        let unit_of: Vec<u32> =
            (0..n).map(|i| (unit_bits >> (i % 32)) & 1).collect();
        let inst = Instance::from_raw(
            b.build().unwrap(),
            exec[..n].to_vec(),
            unit_of,
            unit_infos,
            0,
        );
        let profile = spread_profile(inst.asap_makespan() + slack, &budgets);
        let exact = solve_exact(&inst, &profile, BnbConfig::default());
        prop_assert!(exact.optimal);
        for v in [Variant::Asap, Variant::Slack, Variant::PressWRLs] {
            let c = carbon_cost(&inst, &v.run(&inst, &profile), &profile);
            prop_assert!(c >= exact.cost, "{} beat the optimum", v);
        }
        // The exact schedule passes the ILP checker with equal objective.
        let obj = check_schedule_against_ilp(&inst, &profile, &exact.schedule).unwrap();
        prop_assert_eq!(obj, exact.cost);
    }

    #[test]
    fn ilp_checker_matches_cost_function(
        exec in proptest::collection::vec(1u64..4, 1..4),
        p_idle in 0u64..3,
        p_work in 1u64..6,
        slack in 1u64..5,
        budgets in proptest::collection::vec(0u64..10, 1..4),
        pick in any::<u64>(),
    ) {
        let inst = chain(&exec, p_idle, p_work);
        let total: Time = exec.iter().sum();
        let profile = spread_profile(total + slack, &budgets);
        // A deterministic member of the feasible schedule family:
        // delay the whole chain by `pick % (slack+1)`.
        let delay = pick % (slack + 1);
        let asap = inst.asap_schedule();
        let sched = cawo_core::Schedule::new(
            asap.starts().iter().map(|&s| s + delay).collect(),
        );
        let obj = check_schedule_against_ilp(&inst, &profile, &sched).unwrap();
        prop_assert_eq!(obj, carbon_cost(&inst, &sched, &profile));
    }
}

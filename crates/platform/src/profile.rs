//! Green power profiles: the time-varying renewable supply of §3/§6.1.
//!
//! The horizon `[0, T)` is divided into `J` intervals; interval `I_j`
//! carries a constant green budget `G_j` per time unit. Power drawn above
//! the budget is "brown" and counts as carbon cost. Four scenario shapes
//! (§6.1) and four deadline factors produce the paper's 16 profiles per
//! workflow:
//!
//! * **S1** `-x²`: little green power early, rising, falling again
//!   (solar, morning to evening),
//! * **S2** `x²`: the same day but starting from midday,
//! * **S3** `sin`: 24 h following a sine with little power early,
//! * **S4** constant: storage-backed renewables or nuclear.
//!
//! Budgets are clamped to `[Σ P_idle, Σ P_idle + 0.8 · Σ P_work]` so that
//! scheduling decisions actually matter (§6.1).
//!
//! Beyond the synthetic S1–S4 shapes, a profile can be driven by a
//! *measured* carbon-intensity trace ([`TraceSource`] /
//! [`TraceConfig`]): every trace sample becomes its own interval, so a
//! year of hourly grid data yields thousands of intervals — affordable
//! with `cawo_core`'s interval-sparse cost engine, which scales with
//! the number of intervals rather than the horizon length.

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::Cluster;
use crate::{Power, Time};

/// The four renewable-supply scenarios of §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// S1: `-x²` shape — peak in the middle of the horizon.
    SolarMorning,
    /// S2: `x²` shape — high at both ends, trough in the middle.
    SolarMidday,
    /// S3: sine over `[0, 2π]` with little power at the start.
    Sinusoidal,
    /// S4: constant budget with perturbations.
    Constant,
}

impl Scenario {
    /// All scenarios in paper order.
    pub const ALL: [Scenario; 4] = [
        Scenario::SolarMorning,
        Scenario::SolarMidday,
        Scenario::Sinusoidal,
        Scenario::Constant,
    ];

    /// Paper label (`"S1"`…`"S4"`).
    pub fn label(self) -> &'static str {
        match self {
            Scenario::SolarMorning => "S1",
            Scenario::SolarMidday => "S2",
            Scenario::Sinusoidal => "S3",
            Scenario::Constant => "S4",
        }
    }

    /// Normalized shape value in `[0, 1]` at relative position
    /// `x ∈ [0, 1]` within the horizon (before perturbation).
    fn shape(self, x: f64) -> f64 {
        match self {
            // Inverted parabola: 0 at both ends, 1 at x = 1/2.
            Scenario::SolarMorning => 1.0 - (2.0 * x - 1.0).powi(2),
            // Parabola: 1 at both ends, 0 at x = 1/2.
            Scenario::SolarMidday => (2.0 * x - 1.0).powi(2),
            // One sine period starting low: (1 - cos 2πx)/2.
            Scenario::Sinusoidal => 0.5 * (1.0 - (2.0 * std::f64::consts::PI * x).cos()),
            Scenario::Constant => 0.5,
        }
    }
}

/// Deadline tolerance factors relative to the ASAP makespan `D` (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeadlineFactor {
    /// `T = D` — the tightest deadline.
    X10,
    /// `T = 1.5 D`.
    X15,
    /// `T = 2 D`.
    X20,
    /// `T = 3 D`.
    X30,
}

impl DeadlineFactor {
    /// All factors in paper order.
    pub const ALL: [DeadlineFactor; 4] = [
        DeadlineFactor::X10,
        DeadlineFactor::X15,
        DeadlineFactor::X20,
        DeadlineFactor::X30,
    ];

    /// Factor as a float (for reports).
    pub fn as_f64(self) -> f64 {
        match self {
            DeadlineFactor::X10 => 1.0,
            DeadlineFactor::X15 => 1.5,
            DeadlineFactor::X20 => 2.0,
            DeadlineFactor::X30 => 3.0,
        }
    }

    /// Applies the factor to the ASAP makespan, rounding up to keep the
    /// deadline feasible.
    pub fn apply(self, asap_makespan: Time) -> Time {
        match self {
            DeadlineFactor::X10 => asap_makespan,
            DeadlineFactor::X15 => asap_makespan + asap_makespan.div_ceil(2),
            DeadlineFactor::X20 => 2 * asap_makespan,
            DeadlineFactor::X30 => 3 * asap_makespan,
        }
    }
}

/// Configuration from which a [`PowerProfile`] is generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileConfig {
    /// Scenario shape.
    pub scenario: Scenario,
    /// Deadline tolerance.
    pub deadline: DeadlineFactor,
    /// Seed for the random perturbations.
    pub seed: u64,
    /// Target number of intervals `J` (clamped to the horizon length).
    pub intervals: usize,
    /// Relative perturbation amplitude (uniform in `±perturbation`).
    pub perturbation: f64,
}

impl ProfileConfig {
    /// Paper-style config: 48 intervals, ±15 % perturbation.
    pub fn new(scenario: Scenario, deadline: DeadlineFactor, seed: u64) -> Self {
        ProfileConfig {
            scenario,
            deadline,
            seed,
            intervals: 48,
            perturbation: 0.15,
        }
    }

    /// Generates the profile for a platform whose ASAP schedule finishes
    /// at `asap_makespan`.
    pub fn build(&self, cluster: &Cluster, asap_makespan: Time) -> PowerProfile {
        let horizon = self.deadline.apply(asap_makespan.max(1));
        self.build_over_horizon(cluster, horizon)
    }

    /// Generates the profile over an explicit horizon `T`.
    pub fn build_over_horizon(&self, cluster: &Cluster, horizon: Time) -> PowerProfile {
        assert!(horizon > 0, "horizon must be positive");
        let j = (self.intervals as u64).clamp(1, horizon) as usize;
        let idle = cluster.total_idle_power();
        let work = cluster.total_work_power();
        let green_span = (0.8 * work as f64).floor();

        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9E37_79B9_0000_0001);
        let mut boundaries = Vec::with_capacity(j + 1);
        let mut budgets = Vec::with_capacity(j);
        boundaries.push(0);
        for k in 0..j {
            // Near-equal integer interval lengths covering [0, T) exactly.
            let end = (horizon as u128 * (k as u128 + 1) / j as u128) as Time;
            let x = (k as f64 + 0.5) / j as f64;
            let mut v = self.scenario.shape(x);
            if self.perturbation > 0.0 {
                v *= 1.0 + rng.gen_range(-self.perturbation..=self.perturbation);
            }
            let v = v.clamp(0.0, 1.0);
            budgets.push(idle + (v * green_span).round() as Power);
            boundaries.push(end);
        }
        // Degenerate interval boundaries can coincide when T < J; drop
        // zero-length intervals.
        let mut clean_b = vec![0 as Time];
        let mut clean_g = Vec::new();
        for k in 0..j {
            if boundaries[k + 1] > *clean_b.last().expect("seeded with 0") {
                clean_b.push(boundaries[k + 1]);
                clean_g.push(budgets[k]);
            }
        }
        PowerProfile {
            boundaries: clean_b,
            budgets: clean_g,
        }
    }
}

/// Where a measured carbon-intensity trace comes from.
///
/// A trace is a sequence of `(time, carbon intensity)` samples — the
/// shape real grid-data providers publish (e.g. hourly gCO₂eq/kWh
/// rows). [`TraceConfig`] turns one into a [`PowerProfile`]: high
/// intensity means little green surplus, low intensity means much.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceSource {
    /// Inline CSV text (`time,intensity` rows; `#` comments and one
    /// optional header line are skipped).
    Csv(String),
    /// A CSV file on disk, same format as [`TraceSource::Csv`].
    CsvFile(PathBuf),
    /// Already-parsed samples: strictly increasing times, arbitrary
    /// non-negative intensities.
    Points(Vec<(Time, f64)>),
}

/// Why a trace could not be loaded or converted.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The file behind [`TraceSource::CsvFile`] could not be read.
    Io(String),
    /// A CSV row did not parse as `time,intensity`.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// The trace contains no samples.
    Empty,
    /// Sample times are not strictly increasing.
    NonMonotonic {
        /// 1-based line (or sample) number of the offending entry.
        line: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "cannot read trace: {e}"),
            TraceError::Parse { line, msg } => write!(f, "trace line {line}: {msg}"),
            TraceError::Empty => write!(f, "trace has no samples"),
            TraceError::NonMonotonic { line } => {
                write!(f, "trace line {line}: times must strictly increase")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl TraceSource {
    /// Loads and validates the samples.
    pub fn load(&self) -> Result<Vec<(Time, f64)>, TraceError> {
        let points = match self {
            // CSV sources validate monotonicity during parsing, where
            // real file line numbers are still known.
            TraceSource::Csv(text) => parse_trace_csv(text)?,
            TraceSource::CsvFile(path) => {
                let text =
                    std::fs::read_to_string(path).map_err(|e| TraceError::Io(e.to_string()))?;
                parse_trace_csv(&text)?
            }
            TraceSource::Points(p) => {
                for (i, w) in p.windows(2).enumerate() {
                    if w[1].0 <= w[0].0 {
                        // 1-based sample number of the offending entry.
                        return Err(TraceError::NonMonotonic { line: i + 2 });
                    }
                }
                p.clone()
            }
        };
        if points.is_empty() {
            return Err(TraceError::Empty);
        }
        Ok(points)
    }
}

/// Parses `time,intensity` CSV. Empty lines and `#` comments are
/// skipped; a first row whose time field is not numeric is treated as a
/// header.
fn parse_trace_csv(text: &str) -> Result<Vec<(Time, f64)>, TraceError> {
    let mut points = Vec::new();
    let mut first_row = true;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let header_candidate = first_row;
        first_row = false;
        let mut fields = line.split(',').map(str::trim);
        let t_field = fields.next().unwrap_or("");
        let v_field = fields.next().ok_or(TraceError::Parse {
            line: i + 1,
            msg: "expected `time,intensity`".into(),
        })?;
        let t: Time = match t_field.parse() {
            Ok(t) => t,
            // Allow exactly one header row: the very first content row,
            // and only when *neither* column is numeric — a first row
            // like `0.0,400` is a malformed data row (float timestamp),
            // not a header, and silently dropping it would lose a
            // sample.
            Err(_) if header_candidate && v_field.parse::<f64>().is_err() => continue,
            Err(e) => {
                return Err(TraceError::Parse {
                    line: i + 1,
                    msg: format!("bad time `{t_field}`: {e}"),
                })
            }
        };
        let v: f64 = v_field.parse().map_err(|e| TraceError::Parse {
            line: i + 1,
            msg: format!("bad intensity `{v_field}`: {e}"),
        })?;
        if !v.is_finite() || v < 0.0 {
            return Err(TraceError::Parse {
                line: i + 1,
                msg: format!("intensity {v} must be finite and non-negative"),
            });
        }
        if let Some(&(prev, _)) = points.last() {
            if t <= prev {
                return Err(TraceError::NonMonotonic { line: i + 1 });
            }
        }
        points.push((t, v));
    }
    Ok(points)
}

/// Builds a [`PowerProfile`] from a measured carbon-intensity trace —
/// the trace-driven scenario kind alongside the synthetic S1–S4 shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Where the samples come from.
    pub source: TraceSource,
    /// Deadline tolerance relative to the ASAP makespan (§6.1).
    pub deadline: DeadlineFactor,
}

impl TraceConfig {
    /// Bundles a source with a deadline factor.
    pub fn new(source: TraceSource, deadline: DeadlineFactor) -> Self {
        TraceConfig { source, deadline }
    }

    /// Builds the profile for a platform whose ASAP schedule finishes at
    /// `asap_makespan`.
    pub fn build(
        &self,
        cluster: &Cluster,
        asap_makespan: Time,
    ) -> Result<PowerProfile, TraceError> {
        let horizon = self.deadline.apply(asap_makespan.max(1));
        self.build_over_horizon(cluster, horizon)
    }

    /// Builds the profile over an explicit horizon `T`.
    ///
    /// Sample times are rescaled linearly onto `[0, T)` (the last sample
    /// extends to `T`), and intensities map *inversely* onto the §6.1
    /// budget band `[Σ P_idle, Σ P_idle + 0.8 · Σ P_work]`: the dirtiest
    /// observed hour gets zero green surplus, the cleanest the full
    /// band. Zero-length intervals produced by the rescaling (more
    /// samples than time units) are merged away.
    pub fn build_over_horizon(
        &self,
        cluster: &Cluster,
        horizon: Time,
    ) -> Result<PowerProfile, TraceError> {
        assert!(horizon > 0, "horizon must be positive");
        let points = self.source.load()?;
        let idle = cluster.total_idle_power();
        let work = cluster.total_work_power();
        let green_span = (0.8 * work as f64).floor();

        let lo = points.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
        let hi = points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max);
        let budget_of = |v: f64| -> Power {
            // Flat traces carry no signal; sit mid-band like S4.
            let green = if hi > lo { (hi - v) / (hi - lo) } else { 0.5 };
            idle + (green * green_span).round() as Power
        };

        // Sample i covers [t_i, t_{i+1}); the last sample extends by the
        // final inter-sample gap (a single sample covers everything).
        let t0 = points[0].0;
        let n = points.len();
        let tail_gap = if n >= 2 {
            points[n - 1].0 - points[n - 2].0
        } else {
            1
        };
        let span = (points[n - 1].0 - t0) + tail_gap;
        let mut boundaries = vec![0 as Time];
        let mut budgets: Vec<Power> = Vec::new();
        for (i, &(t, v)) in points.iter().enumerate() {
            let end = if i + 1 < n {
                points[i + 1].0
            } else {
                t + tail_gap
            };
            let b = ((end - t0) as u128 * horizon as u128 / span as u128) as Time;
            // The last sample maps exactly onto the horizon; samples
            // squeezed to zero length by the rescaling are dropped.
            if b > *boundaries.last().expect("seeded with 0") {
                boundaries.push(b);
                budgets.push(budget_of(v));
            }
        }
        debug_assert_eq!(boundaries.last().copied(), Some(horizon));
        Ok(PowerProfile::from_parts(boundaries, budgets))
    }
}

/// A generated green-power profile: interval boundaries and budgets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerProfile {
    /// `J + 1` boundaries `0 = b_1 < e_1 < … < e_J = T` (the set `E`).
    boundaries: Vec<Time>,
    /// Budget `G_j` of each interval.
    budgets: Vec<Power>,
}

impl PowerProfile {
    /// Builds a profile directly from boundaries and budgets. Boundaries
    /// must be strictly increasing and start at 0.
    pub fn from_parts(boundaries: Vec<Time>, budgets: Vec<Power>) -> Self {
        assert!(boundaries.len() >= 2, "need at least one interval");
        assert_eq!(boundaries.len(), budgets.len() + 1);
        assert_eq!(boundaries[0], 0);
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must increase"
        );
        PowerProfile {
            boundaries,
            budgets,
        }
    }

    /// Uniform-budget profile over `[0, T)` (useful for tests).
    pub fn uniform(horizon: Time, budget: Power) -> Self {
        Self::from_parts(vec![0, horizon], vec![budget])
    }

    /// The deadline `T` (end of the horizon).
    pub fn deadline(&self) -> Time {
        *self
            .boundaries
            .last()
            .expect("profiles always have at least one boundary")
    }

    /// Number of intervals `J`.
    pub fn interval_count(&self) -> usize {
        self.budgets.len()
    }

    /// Interval boundaries (the set `E`, length `J + 1`).
    pub fn boundaries(&self) -> &[Time] {
        &self.boundaries
    }

    /// Budget `G_j` of interval `j` (0-based).
    pub fn budget(&self, j: usize) -> Power {
        self.budgets[j]
    }

    /// All budgets.
    pub fn budgets(&self) -> &[Power] {
        &self.budgets
    }

    /// Half-open span `[b_j, e_j)` of interval `j`.
    pub fn interval_span(&self, j: usize) -> (Time, Time) {
        (self.boundaries[j], self.boundaries[j + 1])
    }

    /// Index of the interval containing time `t < T`.
    pub fn interval_of(&self, t: Time) -> usize {
        debug_assert!(t < self.deadline());
        match self.boundaries.binary_search(&t) {
            Ok(j) => j.min(self.budgets.len() - 1),
            Err(j) => j - 1,
        }
    }

    /// Budget at time `t`.
    pub fn budget_at(&self, t: Time) -> Power {
        self.budgets[self.interval_of(t)]
    }

    /// Total green energy over the horizon: `Σ_j G_j · ℓ_j`.
    pub fn total_green_energy(&self) -> u128 {
        self.budgets
            .iter()
            .zip(self.boundaries.windows(2))
            .map(|(&g, w)| g as u128 * (w[1] - w[0]) as u128)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cluster() -> Cluster {
        Cluster::tiny(&[0, 1], 1)
    }

    #[test]
    fn shapes_are_in_unit_range() {
        for s in Scenario::ALL {
            for k in 0..=100 {
                let x = k as f64 / 100.0;
                let v = s.shape(x);
                assert!((0.0..=1.0).contains(&v), "{s:?} at {x}: {v}");
            }
        }
    }

    #[test]
    fn shape_characteristics() {
        // S1 peaks mid-horizon, S2 troughs there.
        assert!(Scenario::SolarMorning.shape(0.5) > Scenario::SolarMorning.shape(0.05));
        assert!(Scenario::SolarMidday.shape(0.5) < Scenario::SolarMidday.shape(0.05));
        // S3 starts low.
        assert!(Scenario::Sinusoidal.shape(0.01) < 0.05);
        // S4 flat.
        assert_eq!(Scenario::Constant.shape(0.1), Scenario::Constant.shape(0.9));
    }

    #[test]
    fn deadline_factors() {
        assert_eq!(DeadlineFactor::X10.apply(100), 100);
        assert_eq!(DeadlineFactor::X15.apply(100), 150);
        assert_eq!(DeadlineFactor::X15.apply(101), 152); // rounds up
        assert_eq!(DeadlineFactor::X20.apply(100), 200);
        assert_eq!(DeadlineFactor::X30.apply(100), 300);
    }

    #[test]
    fn profile_covers_horizon_exactly() {
        let c = tiny_cluster();
        let cfg = ProfileConfig::new(Scenario::SolarMorning, DeadlineFactor::X15, 3);
        let p = cfg.build(&c, 1000);
        assert_eq!(p.deadline(), 1500);
        assert_eq!(p.boundaries()[0], 0);
        assert!(p.boundaries().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(p.interval_count() + 1, p.boundaries().len());
    }

    #[test]
    fn budgets_respect_clamps() {
        let c = tiny_cluster();
        let idle = c.total_idle_power();
        let work = c.total_work_power();
        for s in Scenario::ALL {
            let cfg = ProfileConfig::new(s, DeadlineFactor::X20, 11);
            let p = cfg.build(&c, 500);
            for &g in p.budgets() {
                assert!(g >= idle, "budget below idle floor");
                assert!(g <= idle + (0.8 * work as f64) as Power + 1);
            }
        }
    }

    #[test]
    fn short_horizons_shrink_interval_count() {
        let c = tiny_cluster();
        let cfg = ProfileConfig::new(Scenario::Constant, DeadlineFactor::X10, 0);
        let p = cfg.build(&c, 5);
        assert_eq!(p.deadline(), 5);
        assert!(p.interval_count() <= 5);
        assert!(p.boundaries().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deterministic_in_seed() {
        let c = tiny_cluster();
        let cfg = ProfileConfig::new(Scenario::Sinusoidal, DeadlineFactor::X30, 42);
        assert_eq!(cfg.build(&c, 777), cfg.build(&c, 777));
        let other = ProfileConfig::new(Scenario::Sinusoidal, DeadlineFactor::X30, 43);
        assert_ne!(cfg.build(&c, 777).budgets(), other.build(&c, 777).budgets());
    }

    #[test]
    fn interval_lookup() {
        let p = PowerProfile::from_parts(vec![0, 10, 20, 35], vec![5, 7, 9]);
        assert_eq!(p.interval_of(0), 0);
        assert_eq!(p.interval_of(9), 0);
        assert_eq!(p.interval_of(10), 1);
        assert_eq!(p.interval_of(34), 2);
        assert_eq!(p.budget_at(12), 7);
        assert_eq!(p.interval_span(1), (10, 20));
    }

    #[test]
    fn total_green_energy() {
        let p = PowerProfile::from_parts(vec![0, 10, 20], vec![3, 5]);
        assert_eq!(p.total_green_energy(), 30 + 50);
    }

    #[test]
    fn uniform_profile() {
        let p = PowerProfile::uniform(100, 42);
        assert_eq!(p.interval_count(), 1);
        assert_eq!(p.budget_at(99), 42);
        assert_eq!(p.deadline(), 100);
    }

    #[test]
    #[should_panic(expected = "boundaries must increase")]
    fn rejects_nonincreasing_boundaries() {
        let _ = PowerProfile::from_parts(vec![0, 10, 10], vec![1, 2]);
    }

    #[test]
    fn trace_csv_roundtrip_with_header_and_comments() {
        let src = TraceSource::Csv(
            "# ElectricityMaps-style hourly export\n\
             timestamp,carbon_intensity\n\
             0,400\n3600,100\n7200,250\n"
                .to_string(),
        );
        assert_eq!(
            src.load().unwrap(),
            vec![(0, 400.0), (3600, 100.0), (7200, 250.0)]
        );
    }

    #[test]
    fn trace_profile_inverts_intensity() {
        let c = tiny_cluster();
        let idle = c.total_idle_power();
        let work = c.total_work_power();
        let cfg = TraceConfig::new(
            TraceSource::Points(vec![(0, 400.0), (10, 100.0), (20, 250.0)]),
            DeadlineFactor::X20,
        );
        let p = cfg.build(&c, 150).unwrap();
        assert_eq!(p.deadline(), 300);
        assert_eq!(p.interval_count(), 3);
        // Dirtiest hour (400) → idle-only budget; cleanest (100) → full band.
        assert_eq!(p.budget(0), idle);
        assert_eq!(p.budget(1), idle + (0.8 * work as f64).floor() as Power);
        assert!(p.budget(2) > p.budget(0) && p.budget(2) < p.budget(1));
        // Equal-spaced samples → thirds of the horizon.
        assert_eq!(p.boundaries(), &[0, 100, 200, 300]);
    }

    #[test]
    fn trace_single_sample_and_flat_trace() {
        let c = tiny_cluster();
        let one = TraceConfig::new(TraceSource::Points(vec![(7, 120.0)]), DeadlineFactor::X10);
        let p = one.build(&c, 50).unwrap();
        assert_eq!(p.interval_count(), 1);
        assert_eq!(p.deadline(), 50);
        // Flat traces sit mid-band, like S4.
        let flat = TraceConfig::new(
            TraceSource::Points(vec![(0, 5.0), (10, 5.0)]),
            DeadlineFactor::X10,
        );
        let q = flat.build(&c, 40).unwrap();
        let mid = c.total_idle_power()
            + (0.5 * (0.8 * c.total_work_power() as f64).floor()).round() as Power;
        assert!(q.budgets().iter().all(|&g| g == mid));
    }

    #[test]
    fn trace_denser_than_horizon_merges_intervals() {
        let c = tiny_cluster();
        // 100 samples onto a 10-unit horizon: must merge, stay valid.
        let pts: Vec<(Time, f64)> = (0..100).map(|i| (i as Time, (i % 7) as f64)).collect();
        let cfg = TraceConfig::new(TraceSource::Points(pts), DeadlineFactor::X10);
        let p = cfg.build_over_horizon(&c, 10).unwrap();
        assert_eq!(p.deadline(), 10);
        assert!(p.interval_count() <= 10);
        assert!(p.boundaries().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn trace_errors_are_reported() {
        assert_eq!(
            TraceSource::Csv(String::new()).load(),
            Err(TraceError::Empty)
        );
        assert_eq!(
            TraceSource::Points(vec![(5, 1.0), (5, 2.0)]).load(),
            Err(TraceError::NonMonotonic { line: 2 })
        );
        // CSV monotonicity errors carry the real file line, with
        // comments and a header in the way.
        assert_eq!(
            TraceSource::Csv("# c\ntime,ci\n0,400\n10,300\n5,200".into()).load(),
            Err(TraceError::NonMonotonic { line: 5 })
        );
        assert!(matches!(
            TraceSource::Csv("0,abc".into()).load(),
            Err(TraceError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            TraceSource::Csv("0,1\nxyz,2".into()).load(),
            Err(TraceError::Parse { line: 2, .. })
        ));
        // Only the *first* content row may be a header: a second
        // malformed time is an error, not another header.
        assert!(matches!(
            TraceSource::Csv("time,ci\nN/A,400\n3600,180".into()).load(),
            Err(TraceError::Parse { line: 2, .. })
        ));
        // A first row with a numeric intensity is data with a bad time
        // (e.g. float timestamps), not a header — reject, don't drop.
        assert!(matches!(
            TraceSource::Csv("0.0,400\n1,100\n2,50".into()).load(),
            Err(TraceError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            TraceSource::CsvFile("/nonexistent/trace.csv".into()).load(),
            Err(TraceError::Io(_))
        ));
        assert!(TraceError::Empty.to_string().contains("no samples"));
    }

    #[test]
    fn trace_csv_file_loads() {
        let dir = std::env::temp_dir().join("cawo-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        std::fs::write(&path, "0,300\n60,150\n120,50\n").unwrap();
        let c = tiny_cluster();
        let cfg = TraceConfig::new(TraceSource::CsvFile(path), DeadlineFactor::X15);
        let p = cfg.build(&c, 100).unwrap();
        assert_eq!(p.deadline(), 150);
        assert_eq!(p.interval_count(), 3);
        // Cleanest sample is the last: budgets increase over the day.
        assert!(p.budget(0) < p.budget(1) && p.budget(1) < p.budget(2));
    }

    #[test]
    fn s1_profile_is_higher_mid_horizon() {
        let c = Cluster::paper_small(5);
        let cfg = ProfileConfig {
            scenario: Scenario::SolarMorning,
            deadline: DeadlineFactor::X10,
            seed: 5,
            intervals: 48,
            perturbation: 0.0,
        };
        let p = cfg.build(&c, 4800);
        let mid = p.budget(24);
        let early = p.budget(0);
        let late = p.budget(47);
        assert!(mid > early && mid > late);
    }
}

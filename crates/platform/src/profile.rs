//! Green power profiles: the time-varying renewable supply of §3/§6.1.
//!
//! The horizon `[0, T)` is divided into `J` intervals; interval `I_j`
//! carries a constant green budget `G_j` per time unit. Power drawn above
//! the budget is "brown" and counts as carbon cost. Four scenario shapes
//! (§6.1) and four deadline factors produce the paper's 16 profiles per
//! workflow:
//!
//! * **S1** `-x²`: little green power early, rising, falling again
//!   (solar, morning to evening),
//! * **S2** `x²`: the same day but starting from midday,
//! * **S3** `sin`: 24 h following a sine with little power early,
//! * **S4** constant: storage-backed renewables or nuclear.
//!
//! Budgets are clamped to `[Σ P_idle, Σ P_idle + 0.8 · Σ P_work]` so that
//! scheduling decisions actually matter (§6.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::Cluster;
use crate::{Power, Time};

/// The four renewable-supply scenarios of §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// S1: `-x²` shape — peak in the middle of the horizon.
    SolarMorning,
    /// S2: `x²` shape — high at both ends, trough in the middle.
    SolarMidday,
    /// S3: sine over `[0, 2π]` with little power at the start.
    Sinusoidal,
    /// S4: constant budget with perturbations.
    Constant,
}

impl Scenario {
    /// All scenarios in paper order.
    pub const ALL: [Scenario; 4] = [
        Scenario::SolarMorning,
        Scenario::SolarMidday,
        Scenario::Sinusoidal,
        Scenario::Constant,
    ];

    /// Paper label (`"S1"`…`"S4"`).
    pub fn label(self) -> &'static str {
        match self {
            Scenario::SolarMorning => "S1",
            Scenario::SolarMidday => "S2",
            Scenario::Sinusoidal => "S3",
            Scenario::Constant => "S4",
        }
    }

    /// Normalized shape value in `[0, 1]` at relative position
    /// `x ∈ [0, 1]` within the horizon (before perturbation).
    fn shape(self, x: f64) -> f64 {
        match self {
            // Inverted parabola: 0 at both ends, 1 at x = 1/2.
            Scenario::SolarMorning => 1.0 - (2.0 * x - 1.0).powi(2),
            // Parabola: 1 at both ends, 0 at x = 1/2.
            Scenario::SolarMidday => (2.0 * x - 1.0).powi(2),
            // One sine period starting low: (1 - cos 2πx)/2.
            Scenario::Sinusoidal => 0.5 * (1.0 - (2.0 * std::f64::consts::PI * x).cos()),
            Scenario::Constant => 0.5,
        }
    }
}

/// Deadline tolerance factors relative to the ASAP makespan `D` (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeadlineFactor {
    /// `T = D` — the tightest deadline.
    X10,
    /// `T = 1.5 D`.
    X15,
    /// `T = 2 D`.
    X20,
    /// `T = 3 D`.
    X30,
}

impl DeadlineFactor {
    /// All factors in paper order.
    pub const ALL: [DeadlineFactor; 4] = [
        DeadlineFactor::X10,
        DeadlineFactor::X15,
        DeadlineFactor::X20,
        DeadlineFactor::X30,
    ];

    /// Factor as a float (for reports).
    pub fn as_f64(self) -> f64 {
        match self {
            DeadlineFactor::X10 => 1.0,
            DeadlineFactor::X15 => 1.5,
            DeadlineFactor::X20 => 2.0,
            DeadlineFactor::X30 => 3.0,
        }
    }

    /// Applies the factor to the ASAP makespan, rounding up to keep the
    /// deadline feasible.
    pub fn apply(self, asap_makespan: Time) -> Time {
        match self {
            DeadlineFactor::X10 => asap_makespan,
            DeadlineFactor::X15 => asap_makespan + asap_makespan.div_ceil(2),
            DeadlineFactor::X20 => 2 * asap_makespan,
            DeadlineFactor::X30 => 3 * asap_makespan,
        }
    }
}

/// Configuration from which a [`PowerProfile`] is generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileConfig {
    /// Scenario shape.
    pub scenario: Scenario,
    /// Deadline tolerance.
    pub deadline: DeadlineFactor,
    /// Seed for the random perturbations.
    pub seed: u64,
    /// Target number of intervals `J` (clamped to the horizon length).
    pub intervals: usize,
    /// Relative perturbation amplitude (uniform in `±perturbation`).
    pub perturbation: f64,
}

impl ProfileConfig {
    /// Paper-style config: 48 intervals, ±15 % perturbation.
    pub fn new(scenario: Scenario, deadline: DeadlineFactor, seed: u64) -> Self {
        ProfileConfig {
            scenario,
            deadline,
            seed,
            intervals: 48,
            perturbation: 0.15,
        }
    }

    /// Generates the profile for a platform whose ASAP schedule finishes
    /// at `asap_makespan`.
    pub fn build(&self, cluster: &Cluster, asap_makespan: Time) -> PowerProfile {
        let horizon = self.deadline.apply(asap_makespan.max(1));
        self.build_over_horizon(cluster, horizon)
    }

    /// Generates the profile over an explicit horizon `T`.
    pub fn build_over_horizon(&self, cluster: &Cluster, horizon: Time) -> PowerProfile {
        assert!(horizon > 0, "horizon must be positive");
        let j = (self.intervals as u64).clamp(1, horizon) as usize;
        let idle = cluster.total_idle_power();
        let work = cluster.total_work_power();
        let green_span = (0.8 * work as f64).floor();

        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9E37_79B9_0000_0001);
        let mut boundaries = Vec::with_capacity(j + 1);
        let mut budgets = Vec::with_capacity(j);
        boundaries.push(0);
        for k in 0..j {
            // Near-equal integer interval lengths covering [0, T) exactly.
            let end = (horizon as u128 * (k as u128 + 1) / j as u128) as Time;
            let x = (k as f64 + 0.5) / j as f64;
            let mut v = self.scenario.shape(x);
            if self.perturbation > 0.0 {
                v *= 1.0 + rng.gen_range(-self.perturbation..=self.perturbation);
            }
            let v = v.clamp(0.0, 1.0);
            budgets.push(idle + (v * green_span).round() as Power);
            boundaries.push(end);
        }
        // Degenerate interval boundaries can coincide when T < J; drop
        // zero-length intervals.
        let mut clean_b = vec![0 as Time];
        let mut clean_g = Vec::new();
        for k in 0..j {
            if boundaries[k + 1] > *clean_b.last().unwrap() {
                clean_b.push(boundaries[k + 1]);
                clean_g.push(budgets[k]);
            }
        }
        PowerProfile {
            boundaries: clean_b,
            budgets: clean_g,
        }
    }
}

/// A generated green-power profile: interval boundaries and budgets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerProfile {
    /// `J + 1` boundaries `0 = b_1 < e_1 < … < e_J = T` (the set `E`).
    boundaries: Vec<Time>,
    /// Budget `G_j` of each interval.
    budgets: Vec<Power>,
}

impl PowerProfile {
    /// Builds a profile directly from boundaries and budgets. Boundaries
    /// must be strictly increasing and start at 0.
    pub fn from_parts(boundaries: Vec<Time>, budgets: Vec<Power>) -> Self {
        assert!(boundaries.len() >= 2, "need at least one interval");
        assert_eq!(boundaries.len(), budgets.len() + 1);
        assert_eq!(boundaries[0], 0);
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must increase"
        );
        PowerProfile {
            boundaries,
            budgets,
        }
    }

    /// Uniform-budget profile over `[0, T)` (useful for tests).
    pub fn uniform(horizon: Time, budget: Power) -> Self {
        Self::from_parts(vec![0, horizon], vec![budget])
    }

    /// The deadline `T` (end of the horizon).
    pub fn deadline(&self) -> Time {
        *self.boundaries.last().unwrap()
    }

    /// Number of intervals `J`.
    pub fn interval_count(&self) -> usize {
        self.budgets.len()
    }

    /// Interval boundaries (the set `E`, length `J + 1`).
    pub fn boundaries(&self) -> &[Time] {
        &self.boundaries
    }

    /// Budget `G_j` of interval `j` (0-based).
    pub fn budget(&self, j: usize) -> Power {
        self.budgets[j]
    }

    /// All budgets.
    pub fn budgets(&self) -> &[Power] {
        &self.budgets
    }

    /// Half-open span `[b_j, e_j)` of interval `j`.
    pub fn interval_span(&self, j: usize) -> (Time, Time) {
        (self.boundaries[j], self.boundaries[j + 1])
    }

    /// Index of the interval containing time `t < T`.
    pub fn interval_of(&self, t: Time) -> usize {
        debug_assert!(t < self.deadline());
        match self.boundaries.binary_search(&t) {
            Ok(j) => j.min(self.budgets.len() - 1),
            Err(j) => j - 1,
        }
    }

    /// Budget at time `t`.
    pub fn budget_at(&self, t: Time) -> Power {
        self.budgets[self.interval_of(t)]
    }

    /// Total green energy over the horizon: `Σ_j G_j · ℓ_j`.
    pub fn total_green_energy(&self) -> u128 {
        self.budgets
            .iter()
            .zip(self.boundaries.windows(2))
            .map(|(&g, w)| g as u128 * (w[1] - w[0]) as u128)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cluster() -> Cluster {
        Cluster::tiny(&[0, 1], 1)
    }

    #[test]
    fn shapes_are_in_unit_range() {
        for s in Scenario::ALL {
            for k in 0..=100 {
                let x = k as f64 / 100.0;
                let v = s.shape(x);
                assert!((0.0..=1.0).contains(&v), "{s:?} at {x}: {v}");
            }
        }
    }

    #[test]
    fn shape_characteristics() {
        // S1 peaks mid-horizon, S2 troughs there.
        assert!(Scenario::SolarMorning.shape(0.5) > Scenario::SolarMorning.shape(0.05));
        assert!(Scenario::SolarMidday.shape(0.5) < Scenario::SolarMidday.shape(0.05));
        // S3 starts low.
        assert!(Scenario::Sinusoidal.shape(0.01) < 0.05);
        // S4 flat.
        assert_eq!(Scenario::Constant.shape(0.1), Scenario::Constant.shape(0.9));
    }

    #[test]
    fn deadline_factors() {
        assert_eq!(DeadlineFactor::X10.apply(100), 100);
        assert_eq!(DeadlineFactor::X15.apply(100), 150);
        assert_eq!(DeadlineFactor::X15.apply(101), 152); // rounds up
        assert_eq!(DeadlineFactor::X20.apply(100), 200);
        assert_eq!(DeadlineFactor::X30.apply(100), 300);
    }

    #[test]
    fn profile_covers_horizon_exactly() {
        let c = tiny_cluster();
        let cfg = ProfileConfig::new(Scenario::SolarMorning, DeadlineFactor::X15, 3);
        let p = cfg.build(&c, 1000);
        assert_eq!(p.deadline(), 1500);
        assert_eq!(p.boundaries()[0], 0);
        assert!(p.boundaries().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(p.interval_count() + 1, p.boundaries().len());
    }

    #[test]
    fn budgets_respect_clamps() {
        let c = tiny_cluster();
        let idle = c.total_idle_power();
        let work = c.total_work_power();
        for s in Scenario::ALL {
            let cfg = ProfileConfig::new(s, DeadlineFactor::X20, 11);
            let p = cfg.build(&c, 500);
            for &g in p.budgets() {
                assert!(g >= idle, "budget below idle floor");
                assert!(g <= idle + (0.8 * work as f64) as Power + 1);
            }
        }
    }

    #[test]
    fn short_horizons_shrink_interval_count() {
        let c = tiny_cluster();
        let cfg = ProfileConfig::new(Scenario::Constant, DeadlineFactor::X10, 0);
        let p = cfg.build(&c, 5);
        assert_eq!(p.deadline(), 5);
        assert!(p.interval_count() <= 5);
        assert!(p.boundaries().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deterministic_in_seed() {
        let c = tiny_cluster();
        let cfg = ProfileConfig::new(Scenario::Sinusoidal, DeadlineFactor::X30, 42);
        assert_eq!(cfg.build(&c, 777), cfg.build(&c, 777));
        let other = ProfileConfig::new(Scenario::Sinusoidal, DeadlineFactor::X30, 43);
        assert_ne!(cfg.build(&c, 777).budgets(), other.build(&c, 777).budgets());
    }

    #[test]
    fn interval_lookup() {
        let p = PowerProfile::from_parts(vec![0, 10, 20, 35], vec![5, 7, 9]);
        assert_eq!(p.interval_of(0), 0);
        assert_eq!(p.interval_of(9), 0);
        assert_eq!(p.interval_of(10), 1);
        assert_eq!(p.interval_of(34), 2);
        assert_eq!(p.budget_at(12), 7);
        assert_eq!(p.interval_span(1), (10, 20));
    }

    #[test]
    fn total_green_energy() {
        let p = PowerProfile::from_parts(vec![0, 10, 20], vec![3, 5]);
        assert_eq!(p.total_green_energy(), 30 + 50);
    }

    #[test]
    fn uniform_profile() {
        let p = PowerProfile::uniform(100, 42);
        assert_eq!(p.interval_count(), 1);
        assert_eq!(p.budget_at(99), 42);
        assert_eq!(p.deadline(), 100);
    }

    #[test]
    #[should_panic(expected = "boundaries must increase")]
    fn rejects_nonincreasing_boundaries() {
        let _ = PowerProfile::from_parts(vec![0, 10, 10], vec![1, 2]);
    }

    #[test]
    fn s1_profile_is_higher_mid_horizon() {
        let c = Cluster::paper_small(5);
        let cfg = ProfileConfig {
            scenario: Scenario::SolarMorning,
            deadline: DeadlineFactor::X10,
            seed: 5,
            intervals: 48,
            perturbation: 0.0,
        };
        let p = cfg.build(&c, 4800);
        let mid = p.budget(24);
        let early = p.budget(0);
        let late = p.budget(47);
        assert!(mid > early && mid > late);
    }
}

//! Platform model for the CaWoSched reproduction.
//!
//! Covers §3 ("Platform and application", "Power profile") and the §6.1
//! simulation setup:
//!
//! * [`ProcessorType`] / [`PAPER_PROCESSOR_TYPES`] — the six processor
//!   types of Table 1 (speed, idle power, working power),
//! * [`Cluster`] — a heterogeneous cluster plus the `P(P-1)` fictional
//!   *link processors* of the fully connected full-duplex topology,
//! * [`profile`] — time horizons divided into intervals with per-interval
//!   green power budgets (scenarios S1–S4, deadline factors 1×–3×).
//!
//! All quantities are integer multiples of the paper's time/power units.

pub mod cluster;
pub mod processor;
pub mod profile;

pub use cluster::{Cluster, LinkId, ProcId};
pub use processor::{ProcessorType, PAPER_PROCESSOR_TYPES};
pub use profile::{
    DeadlineFactor, PowerProfile, ProfileConfig, Scenario, TraceConfig, TraceError, TraceSource,
};

/// Discrete time (integer multiples of the paper's time unit).
pub type Time = u64;

/// Power in the paper's abstract power units.
pub type Power = u64;

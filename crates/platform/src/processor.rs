//! Processor types: Table 1 of the paper.

use crate::Power;

/// A processor *type*: normalized speed plus idle/working power demand.
///
/// Table 1 orders types from slowest/least-consuming (`PT1`) to
/// fastest/most-consuming (`PT6`); the general trend "faster processors
/// consume more power" is deliberate (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessorType {
    /// Display name, e.g. `"PT3"`.
    pub name: &'static str,
    /// Normalized speed; the running time of a task with weight `w` is
    /// `ceil(w · REFERENCE_SPEED / speed)` (see [`exec_time`]).
    pub speed: u64,
    /// Idle power `P_idle`, consumed during every time unit.
    pub p_idle: Power,
    /// Working power `P_work`, added while the processor executes a task.
    pub p_work: Power,
}

/// The six processor types of Table 1.
pub const PAPER_PROCESSOR_TYPES: [ProcessorType; 6] = [
    ProcessorType {
        name: "PT1",
        speed: 4,
        p_idle: 40,
        p_work: 10,
    },
    ProcessorType {
        name: "PT2",
        speed: 6,
        p_idle: 60,
        p_work: 30,
    },
    ProcessorType {
        name: "PT3",
        speed: 8,
        p_idle: 80,
        p_work: 40,
    },
    ProcessorType {
        name: "PT4",
        speed: 12,
        p_idle: 120,
        p_work: 50,
    },
    ProcessorType {
        name: "PT5",
        speed: 16,
        p_idle: 150,
        p_work: 70,
    },
    ProcessorType {
        name: "PT6",
        speed: 32,
        p_idle: 200,
        p_work: 100,
    },
];

/// Reference speed used to turn normalized weights into integer running
/// times: a processor of speed `REFERENCE_SPEED` executes a weight-`w`
/// task in exactly `w` time units.
pub const REFERENCE_SPEED: u64 = 8;

/// Integer running time of a task with normalized weight `w` on a
/// processor with normalized speed `speed` (always ≥ 1).
pub fn exec_time(w: u64, speed: u64) -> u64 {
    debug_assert!(speed > 0);
    ((w * REFERENCE_SPEED).div_ceil(speed)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        assert_eq!(PAPER_PROCESSOR_TYPES.len(), 6);
        let pt1 = PAPER_PROCESSOR_TYPES[0];
        assert_eq!((pt1.speed, pt1.p_idle, pt1.p_work), (4, 40, 10));
        let pt6 = PAPER_PROCESSOR_TYPES[5];
        assert_eq!((pt6.speed, pt6.p_idle, pt6.p_work), (32, 200, 100));
    }

    #[test]
    fn speeds_and_power_are_monotone() {
        for w in PAPER_PROCESSOR_TYPES.windows(2) {
            assert!(w[0].speed < w[1].speed);
            assert!(w[0].p_idle < w[1].p_idle);
            assert!(w[0].p_work < w[1].p_work);
        }
    }

    #[test]
    fn exec_time_scales_inversely_with_speed() {
        // Reference speed executes weight verbatim.
        assert_eq!(exec_time(100, REFERENCE_SPEED), 100);
        // Half speed doubles it, quadruple speed quarters it.
        assert_eq!(exec_time(100, 4), 200);
        assert_eq!(exec_time(100, 32), 25);
        // Rounds up.
        assert_eq!(exec_time(3, 32), 1);
        assert_eq!(exec_time(5, 32), 2);
    }

    #[test]
    fn exec_time_is_at_least_one() {
        assert_eq!(exec_time(1, 32), 1);
    }

    #[test]
    fn exec_time_monotone_in_weight() {
        for speed in [4u64, 6, 8, 12, 16, 32] {
            let mut prev = 0;
            for w in 1..200 {
                let t = exec_time(w, speed);
                assert!(t >= prev);
                prev = t;
            }
        }
    }
}

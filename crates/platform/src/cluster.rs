//! Heterogeneous cluster with fictional communication-link processors.
//!
//! §3: the platform is a cluster of `P` heterogeneous processors with a
//! fully connected full-duplex topology. Each of the `P(P-1)` directed
//! links is a *fictional processor* that executes communication tasks;
//! links draw a small random idle/working power (1 or 2 units, §6.1) to
//! introduce mild heterogeneity.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::processor::{exec_time, ProcessorType, PAPER_PROCESSOR_TYPES};
use crate::{Power, Time};

/// Compute-processor index (`0..P`).
pub type ProcId = u32;

/// Directed-link index (`0..P(P-1)`); see [`Cluster::link_id`].
pub type LinkId = u32;

/// One concrete compute processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeProcessor {
    /// Normalized speed (Table 1).
    pub speed: u64,
    /// Idle power `P_idle`.
    pub p_idle: Power,
    /// Working power `P_work`.
    pub p_work: Power,
    /// Index into the processor-type table this processor was drawn from.
    pub type_index: u8,
}

/// A cluster: `P` compute processors plus `P(P-1)` directed links.
///
/// The paper's two evaluation platforms are [`Cluster::paper_small`]
/// (12 nodes of each of the 6 types, 72 total) and
/// [`Cluster::paper_large`] (24 each, 144 total).
#[derive(Debug, Clone)]
pub struct Cluster {
    name: String,
    procs: Vec<ComputeProcessor>,
    /// `(p_idle, p_work)` of every directed link, indexed by [`LinkId`].
    link_power: Vec<(Power, Power)>,
    total_idle: Power,
    total_work: Power,
}

impl Cluster {
    /// Builds a cluster with `counts[i]` processors of
    /// `PAPER_PROCESSOR_TYPES[i]`. Link powers are drawn uniformly from
    /// {1, 2} using `seed` (§6.1).
    pub fn from_type_counts(name: impl Into<String>, counts: &[usize; 6], seed: u64) -> Self {
        let types: Vec<(ProcessorType, usize)> = PAPER_PROCESSOR_TYPES
            .iter()
            .copied()
            .zip(counts.iter().copied())
            .collect();
        Self::from_types(name, &types, seed)
    }

    /// Builds a cluster from explicit `(type, count)` pairs.
    pub fn from_types(
        name: impl Into<String>,
        types: &[(ProcessorType, usize)],
        seed: u64,
    ) -> Self {
        let mut procs = Vec::new();
        for (ti, &(t, count)) in types.iter().enumerate() {
            for _ in 0..count {
                procs.push(ComputeProcessor {
                    speed: t.speed,
                    p_idle: t.p_idle,
                    p_work: t.p_work,
                    type_index: ti as u8,
                });
            }
        }
        assert!(
            !procs.is_empty(),
            "cluster must have at least one processor"
        );
        let p = procs.len();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC1A5_7E2D_0000_0000);
        let link_power: Vec<(Power, Power)> = (0..p * p.saturating_sub(1))
            .map(|_| (rng.gen_range(1..=2), rng.gen_range(1..=2)))
            .collect();
        let total_idle = procs.iter().map(|q| q.p_idle).sum::<Power>()
            + link_power.iter().map(|&(i, _)| i).sum::<Power>();
        let total_work = procs.iter().map(|q| q.p_work).sum::<Power>()
            + link_power.iter().map(|&(_, w)| w).sum::<Power>();
        Cluster {
            name: name.into(),
            procs,
            link_power,
            total_idle,
            total_work,
        }
    }

    /// The paper's *small* cluster: 12 nodes per type, 72 total.
    pub fn paper_small(seed: u64) -> Self {
        Self::from_type_counts("small", &[12; 6], seed)
    }

    /// The paper's *large* cluster: 24 nodes per type, 144 total.
    pub fn paper_large(seed: u64) -> Self {
        Self::from_type_counts("large", &[24; 6], seed)
    }

    /// A deliberately tiny cluster (one processor of each given type
    /// index) for tests and exact-solver experiments.
    pub fn tiny(type_indices: &[usize], seed: u64) -> Self {
        let types: Vec<(ProcessorType, usize)> = type_indices
            .iter()
            .map(|&i| (PAPER_PROCESSOR_TYPES[i], 1))
            .collect();
        Self::from_types("tiny", &types, seed)
    }

    /// A cluster of `p` *uniform* unit-speed processors with
    /// `P_idle = 0, P_work = 1` — the UCAS setting of the NP-completeness
    /// proof (§4.2) and of the uniprocessor DP tests.
    pub fn uniform_unit(p: usize) -> Self {
        let t = ProcessorType {
            name: "UNIT",
            speed: crate::processor::REFERENCE_SPEED,
            p_idle: 0,
            p_work: 1,
        };
        let mut c = Self::from_types("uniform-unit", &[(t, p)], 0);
        // Links in the UCAS reduction carry no communications and no power.
        for lp in &mut c.link_power {
            *lp = (0, 0);
        }
        c.recompute_totals();
        c
    }

    fn recompute_totals(&mut self) {
        self.total_idle = self.procs.iter().map(|q| q.p_idle).sum::<Power>()
            + self.link_power.iter().map(|&(i, _)| i).sum::<Power>();
        self.total_work = self.procs.iter().map(|q| q.p_work).sum::<Power>()
            + self.link_power.iter().map(|&(_, w)| w).sum::<Power>();
    }

    /// Cluster name (`"small"`, `"large"`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of compute processors `P`.
    pub fn proc_count(&self) -> usize {
        self.procs.len()
    }

    /// Number of directed links `P(P-1)`.
    pub fn link_count(&self) -> usize {
        self.link_power.len()
    }

    /// The compute processor with index `p`.
    pub fn proc(&self, p: ProcId) -> &ComputeProcessor {
        &self.procs[p as usize]
    }

    /// All compute processors.
    pub fn procs(&self) -> &[ComputeProcessor] {
        &self.procs
    }

    /// Dense id of the directed link `from -> to` (`from != to`).
    pub fn link_id(&self, from: ProcId, to: ProcId) -> LinkId {
        debug_assert_ne!(from, to);
        let p = self.proc_count() as u32;
        debug_assert!(from < p && to < p);
        let col = if to > from { to - 1 } else { to };
        from * (p - 1) + col
    }

    /// `(p_idle, p_work)` of a directed link.
    pub fn link_power(&self, link: LinkId) -> (Power, Power) {
        self.link_power[link as usize]
    }

    /// Integer running time of a task with weight `w` on processor `p`.
    pub fn exec_time(&self, w: u64, p: ProcId) -> Time {
        exec_time(w, self.procs[p as usize].speed)
    }

    /// Communication time of an edge with weight `c` between two distinct
    /// processors. Bandwidth is normalized to 1 (§6.1), so this is `c`
    /// (and 0 for co-located tasks, handled by the caller).
    pub fn comm_time(&self, c: u64) -> Time {
        c.max(1)
    }

    /// Total idle power `Σ P_idle` over compute processors *and* links —
    /// the lower clamp of every green budget (§6.1).
    pub fn total_idle_power(&self) -> Power {
        self.total_idle
    }

    /// Total working power `Σ P_work` over compute processors and links.
    pub fn total_work_power(&self) -> Power {
        self.total_work
    }

    /// `P_idle + P_work` of compute processor `p` — the weighting factor
    /// numerator of the weighted scores (§5.2).
    pub fn proc_total_power(&self, p: ProcId) -> Power {
        let q = &self.procs[p as usize];
        q.p_idle + q.p_work
    }

    /// `max_j (P_idle + P_work)` over compute processors — the weighting
    /// factor denominator of §5.2.
    pub fn max_proc_total_power(&self) -> Power {
        self.procs
            .iter()
            .map(|q| q.p_idle + q.p_work)
            .max()
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_small_has_72_nodes() {
        let c = Cluster::paper_small(1);
        assert_eq!(c.proc_count(), 72);
        assert_eq!(c.link_count(), 72 * 71);
        assert_eq!(c.name(), "small");
    }

    #[test]
    fn paper_large_has_144_nodes() {
        let c = Cluster::paper_large(1);
        assert_eq!(c.proc_count(), 144);
        assert_eq!(c.link_count(), 144 * 143);
    }

    #[test]
    fn link_ids_are_dense_and_unique() {
        let c = Cluster::tiny(&[0, 1, 2, 3], 0);
        let p = c.proc_count() as u32;
        let mut seen = vec![false; c.link_count()];
        for a in 0..p {
            for b in 0..p {
                if a == b {
                    continue;
                }
                let id = c.link_id(a, b) as usize;
                assert!(id < c.link_count());
                assert!(!seen[id], "duplicate link id {id}");
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn link_power_in_range() {
        let c = Cluster::paper_small(7);
        for l in 0..c.link_count() as u32 {
            let (i, w) = c.link_power(l);
            assert!((1..=2).contains(&i));
            assert!((1..=2).contains(&w));
        }
    }

    #[test]
    fn link_power_is_deterministic_in_seed() {
        let a = Cluster::paper_small(7);
        let b = Cluster::paper_small(7);
        let c = Cluster::paper_small(8);
        assert_eq!(a.link_power, b.link_power);
        assert_ne!(a.link_power, c.link_power);
    }

    #[test]
    fn totals_add_up() {
        let c = Cluster::tiny(&[0, 5], 3);
        // Compute: 40+10 and 200+100; links: 2 links with power 1..=2 each.
        let link_idle: Power = (0..c.link_count() as u32).map(|l| c.link_power(l).0).sum();
        let link_work: Power = (0..c.link_count() as u32).map(|l| c.link_power(l).1).sum();
        assert_eq!(c.total_idle_power(), 40 + 200 + link_idle);
        assert_eq!(c.total_work_power(), 10 + 100 + link_work);
    }

    #[test]
    fn exec_and_comm_times() {
        let c = Cluster::tiny(&[0, 5], 0); // speeds 4 and 32
        assert_eq!(c.exec_time(100, 0), 200);
        assert_eq!(c.exec_time(100, 1), 25);
        assert_eq!(c.comm_time(5), 5);
        assert_eq!(c.comm_time(0), 1);
    }

    #[test]
    fn weighting_factors() {
        let c = Cluster::tiny(&[0, 5], 0);
        assert_eq!(c.proc_total_power(0), 50);
        assert_eq!(c.proc_total_power(1), 300);
        assert_eq!(c.max_proc_total_power(), 300);
    }

    #[test]
    fn uniform_unit_matches_ucas() {
        let c = Cluster::uniform_unit(3);
        assert_eq!(c.proc_count(), 3);
        for q in c.procs() {
            assert_eq!((q.p_idle, q.p_work), (0, 1));
        }
        assert_eq!(c.total_idle_power(), 0);
        assert_eq!(c.total_work_power(), 3);
        // Unit speed == reference speed: weight w runs in w time units.
        assert_eq!(c.exec_time(17, 0), 17);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn empty_cluster_panics() {
        let _ = Cluster::from_types("empty", &[], 0);
    }
}

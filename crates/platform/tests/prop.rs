//! Property-based tests for the platform model.

use proptest::prelude::*;

use cawo_platform::processor::{exec_time, REFERENCE_SPEED};
use cawo_platform::{Cluster, DeadlineFactor, ProfileConfig, Scenario};

fn any_scenario() -> impl Strategy<Value = Scenario> {
    prop_oneof![
        Just(Scenario::SolarMorning),
        Just(Scenario::SolarMidday),
        Just(Scenario::Sinusoidal),
        Just(Scenario::Constant),
    ]
}

fn any_deadline() -> impl Strategy<Value = DeadlineFactor> {
    prop_oneof![
        Just(DeadlineFactor::X10),
        Just(DeadlineFactor::X15),
        Just(DeadlineFactor::X20),
        Just(DeadlineFactor::X30),
    ]
}

proptest! {
    #[test]
    fn profiles_partition_the_horizon(
        scenario in any_scenario(),
        deadline in any_deadline(),
        seed in any::<u64>(),
        asap in 1u64..5000,
        intervals in 1usize..96,
    ) {
        let cluster = Cluster::tiny(&[0, 3], seed);
        let cfg = ProfileConfig { scenario, deadline, seed, intervals, perturbation: 0.15 };
        let p = cfg.build(&cluster, asap);
        // Boundaries strictly increase from 0 to T.
        prop_assert_eq!(p.boundaries()[0], 0);
        prop_assert_eq!(*p.boundaries().last().unwrap(), deadline.apply(asap));
        prop_assert!(p.boundaries().windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(p.interval_count() + 1, p.boundaries().len());
        // Budgets within §6.1 clamps.
        let idle = cluster.total_idle_power();
        let hi = idle + (0.8 * cluster.total_work_power() as f64) as u64 + 1;
        for &g in p.budgets() {
            prop_assert!(g >= idle && g <= hi);
        }
        // Lookup agrees with the span structure.
        for j in 0..p.interval_count() {
            let (b, e) = p.interval_span(j);
            prop_assert_eq!(p.interval_of(b), j);
            prop_assert_eq!(p.interval_of(e - 1), j);
        }
    }

    #[test]
    fn deadline_factor_monotone(asap in 1u64..100_000) {
        let d10 = DeadlineFactor::X10.apply(asap);
        let d15 = DeadlineFactor::X15.apply(asap);
        let d20 = DeadlineFactor::X20.apply(asap);
        let d30 = DeadlineFactor::X30.apply(asap);
        prop_assert!(d10 <= d15 && d15 <= d20 && d20 <= d30);
        prop_assert_eq!(d10, asap);
        // 1.5x rounds up, never below the true product.
        prop_assert!(2 * d15 >= 3 * asap);
    }

    #[test]
    fn exec_time_properties(w in 1u64..10_000, speed in 1u64..64) {
        let t = exec_time(w, speed);
        prop_assert!(t >= 1);
        // Faster is never slower.
        if speed > 1 {
            prop_assert!(exec_time(w, speed - 1) >= t);
        }
        // Reference speed is identity.
        prop_assert_eq!(exec_time(w, REFERENCE_SPEED), w);
    }

    #[test]
    fn link_ids_bijective(num_types in 1usize..5, seed in any::<u64>()) {
        let types: Vec<usize> = (0..num_types).collect();
        let c = Cluster::tiny(&types, seed);
        let p = c.proc_count() as u32;
        let mut seen = vec![false; c.link_count()];
        for a in 0..p {
            for b in 0..p {
                if a != b {
                    let id = c.link_id(a, b) as usize;
                    prop_assert!(!seen[id]);
                    seen[id] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn total_green_energy_matches_manual_sum(
        seed in any::<u64>(),
        asap in 10u64..1000,
    ) {
        let cluster = Cluster::tiny(&[1], seed);
        let cfg = ProfileConfig::new(Scenario::Sinusoidal, DeadlineFactor::X20, seed);
        let p = cfg.build(&cluster, asap);
        let manual: u128 = (0..p.interval_count())
            .map(|j| {
                let (b, e) = p.interval_span(j);
                p.budget(j) as u128 * (e - b) as u128
            })
            .sum();
        prop_assert_eq!(p.total_green_energy(), manual);
    }
}

//! The greedy placement procedure of §5.2.
//!
//! Tasks are processed in score order; each is started at the beginning
//! of the feasible interval (`EST(v) ≤ b_j ≤ LST(v)`) with the highest
//! remaining budget (earliest wins ties), falling back to `EST(v)` when
//! no interval beginning is feasible. After each placement:
//!
//! * the interval containing the task's start/end is split so the
//!   occupied region is its own (sub)interval,
//! * the budget of every covered interval drops by `P_idle + P_work` of
//!   the task's unit (budgets may go negative — a crowded interval must
//!   rank below an empty one),
//! * EST/LST of the still-unscheduled tasks are re-propagated.

use cawo_platform::{PowerProfile, Time};

use crate::bounds::Bounds;
use crate::engine::CostEngine;
use crate::enhanced::Instance;
use crate::schedule::Schedule;
use crate::scores::{score_order, Score};
use crate::subdivision::refined_boundaries;

/// Configuration of one greedy variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GreedyConfig {
    /// Base score (slack or pressure).
    pub score: Score,
    /// Apply the power-heterogeneity weighting factor.
    pub weighted: bool,
    /// Use the refined interval subdivision.
    pub refined: bool,
    /// Block size `k` for the refined subdivision (paper: 3).
    pub block_k: usize,
    /// Upper bound on refined boundaries (see [`refined_boundaries`]).
    pub refine_cap: usize,
}

impl GreedyConfig {
    /// Paper settings: `k = 3`; the cap keeps large instances tractable.
    pub fn new(score: Score, weighted: bool, refined: bool) -> Self {
        GreedyConfig {
            score,
            weighted,
            refined,
            block_k: 3,
            refine_cap: 4096,
        }
    }
}

/// Mutable interval list with budgets (begin-sorted, half-open spans).
struct IntervalSet {
    begin: Vec<Time>,
    end: Vec<Time>,
    budget: Vec<i64>,
}

impl IntervalSet {
    fn from_boundaries(boundaries: &[Time], profile: &PowerProfile) -> Self {
        let m = boundaries.len() - 1;
        let mut begin = Vec::with_capacity(m);
        let mut end = Vec::with_capacity(m);
        let mut budget = Vec::with_capacity(m);
        for w in boundaries.windows(2) {
            begin.push(w[0]);
            end.push(w[1]);
            budget.push(profile.budget_at(w[0]) as i64);
        }
        IntervalSet { begin, end, budget }
    }

    fn len(&self) -> usize {
        self.begin.len()
    }

    /// Best feasible start: the beginning `b_j ∈ [est, lst]` of the
    /// interval with the highest budget; earliest wins ties. `None` when
    /// no interval begins inside the window.
    fn best_start(&self, est: Time, lst: Time) -> Option<Time> {
        let lo = self.begin.partition_point(|&b| b < est);
        let hi = self.begin.partition_point(|&b| b <= lst);
        if lo >= hi {
            return None;
        }
        let mut best = lo;
        for i in lo + 1..hi {
            if self.budget[i] > self.budget[best] {
                best = i;
            }
        }
        Some(self.begin[best])
    }

    /// Index of the interval containing `t`.
    fn index_of(&self, t: Time) -> usize {
        debug_assert!(self.end.last().is_some_and(|&last| t < last));
        self.begin.partition_point(|&b| b <= t) - 1
    }

    /// Splits the interval containing `t` at `t` (no-op if `t` is
    /// already a boundary). Returns the index of the interval that now
    /// *starts* at `t`.
    fn split_at(&mut self, t: Time) -> usize {
        let i = self.index_of(t);
        if self.begin[i] == t {
            return i;
        }
        let e = self.end[i];
        let g = self.budget[i];
        self.end[i] = t;
        self.begin.insert(i + 1, t);
        self.end.insert(i + 1, e);
        self.budget.insert(i + 1, g);
        i + 1
    }

    /// Registers a task occupying `[s, e)` with unit power `p`: splits
    /// the boundary intervals and decrements every covered budget.
    fn occupy(&mut self, s: Time, e: Time, p: i64) {
        debug_assert!(s < e);
        let first = self.split_at(s);
        // Splitting at `e` only when `e` lies strictly inside the horizon.
        if self.end.last().is_some_and(|&last| e < last) {
            self.split_at(e);
        }
        let mut i = first;
        while i < self.len() && self.begin[i] < e {
            self.budget[i] -= p;
            i += 1;
        }
    }
}

/// Runs the greedy variant on an instance and profile, producing a
/// deadline-feasible schedule (the deadline is the profile's horizon).
pub fn greedy_schedule(inst: &Instance, profile: &PowerProfile, cfg: GreedyConfig) -> Schedule {
    let deadline = profile.deadline();
    let mut bounds = Bounds::new(inst, deadline);
    assert!(
        bounds.is_feasible(inst),
        "deadline {deadline} below ASAP makespan — no feasible schedule"
    );

    let boundaries: Vec<Time> = if cfg.refined {
        refined_boundaries(inst, profile, cfg.block_k, cfg.refine_cap)
    } else {
        profile.boundaries().to_vec()
    };
    let mut ivals = IntervalSet::from_boundaries(&boundaries, profile);

    let order = score_order(inst, &bounds, cfg.score, cfg.weighted);
    let mut start = vec![0 as Time; inst.node_count()];
    for &v in &order {
        let est = bounds.est(v);
        let lst = bounds.lst(v);
        let s = ivals.best_start(est, lst).unwrap_or(est);
        start[v as usize] = s;
        bounds.fix(inst, v, s);
        ivals.occupy(s, s + inst.exec(v), inst.unit_total_power(v) as i64);
    }
    Schedule::new(start)
}

/// Runs the greedy variant and hands back a [`CostEngine`] tracking the
/// produced schedule, ready for the local-search phase (the `-LS`
/// variants evaluate thousands of candidate shifts against it; building
/// it here lets [`crate::variant::Variant::run_with`] stay generic over
/// the backend).
pub fn greedy_schedule_with_engine<E: CostEngine>(
    inst: &Instance,
    profile: &PowerProfile,
    cfg: GreedyConfig,
) -> (Schedule, E) {
    let sched = greedy_schedule(inst, profile, cfg);
    let engine = E::build(inst, &sched, profile);
    (sched, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::carbon_cost;
    use crate::enhanced::UnitInfo;
    use cawo_graph::dag::DagBuilder;

    fn single_task(exec: Time, p_work: u64) -> Instance {
        let dag = DagBuilder::new(1).build().unwrap();
        Instance::from_raw(
            dag,
            vec![exec],
            vec![0],
            vec![UnitInfo {
                p_idle: 0,
                p_work,
                is_link: false,
            }],
            0,
        )
    }

    #[test]
    fn interval_set_best_start() {
        let profile = PowerProfile::from_parts(vec![0, 10, 20, 30], vec![5, 9, 2]);
        let iv = IntervalSet::from_boundaries(profile.boundaries(), &profile);
        // Window covering all beginnings: highest budget is interval 1.
        assert_eq!(iv.best_start(0, 29), Some(10));
        // Window excluding interval 1's beginning.
        assert_eq!(iv.best_start(11, 29), Some(20));
        // Empty window.
        assert_eq!(iv.best_start(11, 19), None);
        // Tie prefers earliest: equal budgets.
        let profile2 = PowerProfile::from_parts(vec![0, 10, 20], vec![7, 7]);
        let iv2 = IntervalSet::from_boundaries(profile2.boundaries(), &profile2);
        assert_eq!(iv2.best_start(0, 15), Some(0));
    }

    #[test]
    fn interval_set_split_and_occupy() {
        let profile = PowerProfile::from_parts(vec![0, 10, 20], vec![5, 5]);
        let mut iv = IntervalSet::from_boundaries(profile.boundaries(), &profile);
        iv.occupy(3, 7, 2);
        // Intervals now: [0,3) g5, [3,7) g3, [7,10) g5, [10,20) g5.
        assert_eq!(iv.begin, vec![0, 3, 7, 10]);
        assert_eq!(iv.budget, vec![5, 3, 5, 5]);
        // Occupying across a boundary decrements both sides.
        iv.occupy(8, 12, 4);
        assert_eq!(iv.begin, vec![0, 3, 7, 8, 10, 12]);
        assert_eq!(iv.budget, vec![5, 3, 5, 1, 1, 5]);
    }

    #[test]
    fn occupy_to_horizon_end() {
        let profile = PowerProfile::from_parts(vec![0, 10], vec![5]);
        let mut iv = IntervalSet::from_boundaries(profile.boundaries(), &profile);
        iv.occupy(6, 10, 1);
        assert_eq!(iv.begin, vec![0, 6]);
        assert_eq!(iv.budget, vec![5, 4]);
    }

    #[test]
    fn single_task_moves_to_greenest_interval() {
        let inst = single_task(4, 10);
        // Budgets: interval 2 (of 3) is greenest.
        let profile = PowerProfile::from_parts(vec![0, 10, 20, 30], vec![1, 12, 3]);
        for score in [Score::Slack, Score::Pressure] {
            let sched = greedy_schedule(&inst, &profile, GreedyConfig::new(score, false, false));
            assert_eq!(sched.start(0), 10, "task should start at greenest interval");
            assert!(sched.validate(&inst, 30).is_ok());
        }
    }

    #[test]
    fn tight_deadline_forces_est() {
        let inst = single_task(10, 10);
        let profile = PowerProfile::from_parts(vec![0, 10], vec![1]);
        let sched = greedy_schedule(
            &inst,
            &profile,
            GreedyConfig::new(Score::Pressure, false, false),
        );
        assert_eq!(sched.start(0), 0);
    }

    #[test]
    fn est_fallback_when_no_interval_begins_in_window() {
        // Task with window [5, 8] but boundaries at 0 and 20 only.
        let mut b = DagBuilder::new(2);
        b.add_edge(0, 1);
        let inst = Instance::from_raw(
            b.build().unwrap(),
            vec![5, 7],
            vec![0, 0],
            vec![UnitInfo {
                p_idle: 0,
                p_work: 3,
                is_link: false,
            }],
            0,
        );
        let profile = PowerProfile::from_parts(vec![0, 20], vec![0]);
        let sched = greedy_schedule(
            &inst,
            &profile,
            GreedyConfig::new(Score::Slack, false, false),
        );
        assert!(sched.validate(&inst, 20).is_ok());
        // Task 0 can start at boundary 0; task 1's window [5,13] contains
        // no boundary, so it falls back to its EST (5 if 0 starts at 0).
        assert_eq!(sched.start(0), 0);
        assert_eq!(sched.start(1), 5);
    }

    #[test]
    fn greedy_beats_asap_on_solar_profile() {
        // Chain of two tasks; green power only in the second half.
        let mut b = DagBuilder::new(2);
        b.add_edge(0, 1);
        let inst = Instance::from_raw(
            b.build().unwrap(),
            vec![5, 5],
            vec![0, 0],
            vec![UnitInfo {
                p_idle: 0,
                p_work: 10,
                is_link: false,
            }],
            0,
        );
        let profile = PowerProfile::from_parts(vec![0, 15, 30], vec![0, 10]);
        let asap = inst.asap_schedule();
        let asap_cost = carbon_cost(&inst, &asap, &profile);
        assert_eq!(asap_cost, 100); // both tasks fully brown
        for refined in [false, true] {
            for score in [Score::Slack, Score::Pressure] {
                let cfg = GreedyConfig::new(score, false, refined);
                let sched = greedy_schedule(&inst, &profile, cfg);
                assert!(sched.validate(&inst, 30).is_ok());
                let cost = carbon_cost(&inst, &sched, &profile);
                assert!(cost < asap_cost, "greedy {score:?}/{refined} not better");
            }
        }
    }

    #[test]
    fn refined_subdivision_can_fit_between_boundaries() {
        // One task of length 4; the greenest region is [13, 20) but the
        // normal subdivision only offers beginnings {0, 13}; with a 17-
        // long horizon the end-aligned refined boundary 20-4=16 also
        // appears. Here both succeed; verify refined validity + cost
        // sanity on a case where alignment matters.
        let inst = single_task(4, 10);
        let profile = PowerProfile::from_parts(vec![0, 13, 20], vec![2, 11]);
        let cfg = GreedyConfig::new(Score::Slack, false, true);
        let sched = greedy_schedule(&inst, &profile, cfg);
        assert!(sched.validate(&inst, 20).is_ok());
        assert_eq!(carbon_cost(&inst, &sched, &profile), 0);
    }

    #[test]
    fn all_variants_produce_valid_schedules_on_random_instances() {
        use cawo_graph::generator::{generate, Family, GeneratorConfig};
        use cawo_heft::heft_schedule;
        use cawo_platform::{Cluster, DeadlineFactor, ProfileConfig, Scenario};
        let wf = generate(&GeneratorConfig::new(Family::Atacseq, 80, 21));
        let cluster = Cluster::from_type_counts("mini", &[1, 1, 1, 1, 1, 1], 21);
        let mapping = heft_schedule(&wf, &cluster);
        let inst = Instance::build(&wf, &cluster, &mapping);
        let asap = inst.asap_makespan();
        for scenario in Scenario::ALL {
            let profile =
                ProfileConfig::new(scenario, DeadlineFactor::X20, 21).build(&cluster, asap);
            for score in [Score::Slack, Score::Pressure] {
                for weighted in [false, true] {
                    for refined in [false, true] {
                        let cfg = GreedyConfig::new(score, weighted, refined);
                        let sched = greedy_schedule(&inst, &profile, cfg);
                        sched
                            .validate(&inst, profile.deadline())
                            .unwrap_or_else(|e| panic!("{score:?} w={weighted} r={refined}: {e}"));
                    }
                }
            }
        }
    }

    #[test]
    fn greedy_with_engine_tracks_the_schedule() {
        use crate::engine::{DenseGrid, IntervalEngine};
        let inst = single_task(4, 10);
        let profile = PowerProfile::from_parts(vec![0, 10, 20, 30], vec![1, 12, 3]);
        let cfg = GreedyConfig::new(Score::Pressure, true, true);
        let (sched, engine) = greedy_schedule_with_engine::<IntervalEngine>(&inst, &profile, cfg);
        assert_eq!(engine.total_cost(), carbon_cost(&inst, &sched, &profile));
        let (sched2, oracle) = greedy_schedule_with_engine::<DenseGrid>(&inst, &profile, cfg);
        assert_eq!(sched, sched2, "engine choice must not affect greedy");
        assert_eq!(oracle.total_cost(), engine.total_cost());
    }

    #[test]
    #[should_panic(expected = "no feasible schedule")]
    fn infeasible_deadline_panics() {
        let inst = single_task(10, 1);
        let profile = PowerProfile::from_parts(vec![0, 5], vec![1]);
        let _ = greedy_schedule(
            &inst,
            &profile,
            GreedyConfig::new(Score::Slack, false, false),
        );
    }
}

//! Refined interval subdivision (§5.2, "Subdivision of the intervals").
//!
//! Motivated by the uniprocessor result that some optimal schedule aligns
//! every *block* of back-to-back tasks with an interval boundary
//! (Lemma 4.2), the refined variants consider, on every execution unit,
//! all blocks of at most `k` consecutive tasks, tentatively align each
//! block's start or end with each original interval boundary, and record
//! the start times this induces for the tasks inside the block. The
//! union of all recorded times defines a finer subdivision of the
//! horizon.
//!
//! Every induced start time is of the form `e ± d` where `e` is an
//! original boundary and `d` a sum of at most `k` *consecutive* running
//! times on one unit — so we collect the distinct `d` values first
//! (deduplicated globally) and then take the cross product with the
//! boundaries, which keeps the memory footprint linear.
//!
//! The paper notes `k = 3 already creates a lot of subintervals`; on
//! 30 000-task instances the full cross product can exceed millions of
//! boundaries, which would dominate the greedy's interval scans. The
//! `cap` parameter bounds the subdivision size by even subsampling
//! (original boundaries are always kept). `cap = usize::MAX` reproduces
//! the uncapped construction.

use cawo_platform::{PowerProfile, Time};

use crate::enhanced::Instance;

/// Computes the refined boundary set: all induced task start times in
/// `(0, T)` plus the original boundaries, sorted, deduplicated and capped
/// at `cap` entries.
pub fn refined_boundaries(
    inst: &Instance,
    profile: &PowerProfile,
    k: usize,
    cap: usize,
) -> Vec<Time> {
    let horizon = profile.deadline();

    // Distinct sums of 1..=k consecutive running times per unit.
    let mut deltas: Vec<Time> = Vec::new();
    for u in 0..inst.unit_count() as u32 {
        let order = inst.unit_order(u);
        for i in 0..order.len() {
            let mut sum = 0;
            for &v in &order[i..order.len().min(i + k)] {
                sum += inst.exec(v);
                deltas.push(sum);
            }
        }
    }
    deltas.sort_unstable();
    deltas.dedup();

    let originals = profile.boundaries();
    let mut candidates: Vec<Time> = Vec::with_capacity(originals.len() * (2 * deltas.len() + 1));
    candidates.extend_from_slice(originals);
    for &e in originals {
        for &d in &deltas {
            // Start-aligned blocks put later tasks at e + d; end-aligned
            // blocks put earlier tasks at e - d.
            let plus = e + d;
            if plus < horizon {
                candidates.push(plus);
            }
            if let Some(minus) = e.checked_sub(d) {
                if minus > 0 {
                    candidates.push(minus);
                }
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();

    if candidates.len() > cap {
        subsample_keeping(&candidates, originals, cap)
    } else {
        candidates
    }
}

/// Evenly subsamples `candidates` down to ≈ `cap` entries while keeping
/// every entry of `must_keep` (both inputs sorted).
fn subsample_keeping(candidates: &[Time], must_keep: &[Time], cap: usize) -> Vec<Time> {
    let stride = candidates.len().div_ceil(cap.max(must_keep.len())).max(1);
    let mut out: Vec<Time> = candidates.iter().copied().step_by(stride).collect();
    out.extend_from_slice(must_keep);
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enhanced::UnitInfo;
    use cawo_graph::dag::DagBuilder;

    /// Chain of three tasks, exec 5, 3, 2 on one unit.
    fn chain() -> Instance {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        Instance::from_raw(
            b.build().unwrap(),
            vec![5, 3, 2],
            vec![0, 0, 0],
            vec![UnitInfo {
                p_idle: 0,
                p_work: 1,
                is_link: false,
            }],
            0,
        )
    }

    #[test]
    fn contains_all_original_boundaries() {
        let inst = chain();
        let profile = PowerProfile::from_parts(vec![0, 7, 14, 20], vec![1, 2, 3]);
        let refined = refined_boundaries(&inst, &profile, 3, usize::MAX);
        for b in profile.boundaries() {
            assert!(refined.contains(b), "missing original boundary {b}");
        }
    }

    #[test]
    fn k1_blocks_align_single_tasks() {
        let inst = chain();
        let profile = PowerProfile::from_parts(vec![0, 10, 20], vec![1, 2]);
        let refined = refined_boundaries(&inst, &profile, 1, usize::MAX);
        // Deltas for k=1: {5, 3, 2}. Around boundary 10: 10±{2,3,5}.
        for t in [5, 7, 8, 12, 13, 15] {
            assert!(refined.contains(&t), "missing {t} in {refined:?}");
        }
        // Nothing beyond the horizon boundary T = 20 itself.
        assert!(!refined.iter().any(|&t| t > 20));
        assert_eq!(refined[0], 0);
        assert_eq!(*refined.last().unwrap(), 20);
    }

    #[test]
    fn k3_includes_consecutive_sums() {
        let inst = chain();
        let profile = PowerProfile::from_parts(vec![0, 20], vec![1]);
        let refined = refined_boundaries(&inst, &profile, 3, usize::MAX);
        // Deltas: 5, 3, 2, 5+3=8, 3+2=5, 5+3+2=10 ⇒ {2,3,5,8,10}.
        // From boundary 0 only +d survives: {2,3,5,8,10};
        // from boundary 20 only -d: {18,17,15,12,10}.
        let expect: Vec<Time> = vec![0, 2, 3, 5, 8, 10, 12, 15, 17, 18, 20];
        assert_eq!(refined, expect);
    }

    #[test]
    fn sorted_and_unique() {
        let inst = chain();
        let profile = PowerProfile::from_parts(vec![0, 6, 13, 20], vec![3, 1, 2]);
        let refined = refined_boundaries(&inst, &profile, 3, usize::MAX);
        assert!(refined.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn cap_subsamples_but_keeps_originals() {
        let inst = chain();
        let profile = PowerProfile::from_parts(vec![0, 6, 13, 20], vec![3, 1, 2]);
        let full = refined_boundaries(&inst, &profile, 3, usize::MAX);
        let capped = refined_boundaries(&inst, &profile, 3, 6);
        assert!(capped.len() < full.len());
        for b in profile.boundaries() {
            assert!(capped.contains(b));
        }
        assert!(capped.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn refinement_is_superset_of_original() {
        let inst = chain();
        let profile = PowerProfile::from_parts(vec![0, 10, 20], vec![1, 2]);
        let refined = refined_boundaries(&inst, &profile, 2, usize::MAX);
        assert!(refined.len() > profile.boundaries().len());
    }
}

//! CaWoSched core: carbon-aware scheduling with fixed mapping & deadline.
//!
//! This crate implements the paper's primary contribution:
//!
//! * [`enhanced`] — the communication-enhanced DAG `Gc` of §3: every
//!   cross-processor communication becomes a task on a fictional link
//!   processor, with ordering constraints (`E''`) baked in as edges,
//! * [`schedule`] — start-time assignments over `Gc` plus validity checks,
//! * [`cost`] — the carbon-cost function: the polynomial interval-sweep
//!   algorithm of Appendix A.1 and a pseudo-polynomial per-time-unit
//!   oracle,
//! * [`engine`] — the [`engine::CostEngine`] trait behind all
//!   incremental cost evaluation, with two interchangeable backends:
//!   the per-time-unit [`engine::DenseGrid`] oracle and the
//!   interval-sparse [`engine::IntervalEngine`] whose operations cost
//!   `O(breakpoints touched)` instead of `O(horizon)`,
//! * [`bounds`] — earliest/latest start times (EST/LST) with dynamic
//!   updates after each placement (§5.2),
//! * [`scores`] — slack, pressure and their power-weighted variants,
//! * [`subdivision`] — the refined interval subdivision built from blocks
//!   of at most `k` consecutive tasks (§5.2),
//! * [`greedy`] — the greedy placement procedure (8 variants),
//! * [`mod@local_search`] — the hill-climbing refinement (suffix `-LS`),
//! * [`variant`] — the 16 named CaWoSched variants plus the ASAP baseline.

pub mod bounds;
pub mod cost;
pub mod engine;
pub mod enhanced;
pub mod greedy;
pub mod local_search;
pub mod schedule;
pub mod scores;
pub mod subdivision;
pub mod variant;

pub use bounds::Bounds;
pub use cost::{
    carbon_cost, carbon_cost_from, carbon_cost_naive, energy_report, Cost, EnergyReport,
};
pub use engine::{
    profile_divergence, reanswer_cost, repair_for_deadline, CostEngine, DenseGrid, EngineKind,
    Fenwick, FenwickEngine, IntervalEngine, PrefixCost,
};
pub use enhanced::{Instance, NodeKind, UnitId};
pub use greedy::{greedy_schedule, greedy_schedule_with_engine, GreedyConfig};
pub use local_search::{
    local_search, local_search_on_engine, local_search_with_engine, local_search_with_policy,
    LocalSearchStats, LsPolicy,
};
pub use schedule::{Schedule, ScheduleError};
pub use scores::Score;
pub use variant::{RunParams, Variant};

//! Schedules over the enhanced DAG and their validity conditions.

use cawo_graph::NodeId;
use cawo_platform::Time;

use crate::enhanced::Instance;

/// A start-time assignment `σ` for every `Gc` node (§3: "a schedule,
/// i.e., a start time for each task of Vc, including communication
/// tasks").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    start: Vec<Time>,
}

/// Why a schedule is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Wrong number of start times.
    WrongLength {
        /// Expected node count of the instance.
        expected: usize,
        /// Entries in the schedule.
        got: usize,
    },
    /// Edge `(u, v)` violated: `v` starts before `u` finishes.
    PrecedenceViolated {
        /// Predecessor node.
        u: NodeId,
        /// Successor node that starts too early.
        v: NodeId,
    },
    /// A node finishes after the deadline `T`.
    DeadlineExceeded {
        /// Offending node.
        v: NodeId,
        /// Its completion time.
        finish: Time,
        /// The deadline it violates.
        deadline: Time,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::WrongLength { expected, got } => {
                write!(f, "schedule has {got} entries, expected {expected}")
            }
            ScheduleError::PrecedenceViolated { u, v } => {
                write!(f, "precedence ({u}, {v}) violated")
            }
            ScheduleError::DeadlineExceeded {
                v,
                finish,
                deadline,
            } => {
                write!(f, "node {v} finishes at {finish} > deadline {deadline}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Wraps explicit start times.
    pub fn new(start: Vec<Time>) -> Self {
        Schedule { start }
    }

    /// Start time of node `v`.
    pub fn start(&self, v: NodeId) -> Time {
        self.start[v as usize]
    }

    /// Completion time of node `v`.
    pub fn finish(&self, v: NodeId, inst: &Instance) -> Time {
        self.start[v as usize] + inst.exec(v)
    }

    /// All start times.
    pub fn starts(&self) -> &[Time] {
        &self.start
    }

    /// Mutable start time (used by the local search).
    pub fn set_start(&mut self, v: NodeId, t: Time) {
        self.start[v as usize] = t;
    }

    /// Makespan: the maximum completion time.
    pub fn makespan(&self, inst: &Instance) -> Time {
        (0..self.start.len() as NodeId)
            .map(|v| self.finish(v, inst))
            .max()
            .unwrap_or(0)
    }

    /// Checks every precedence of `Gc` and the deadline. Because the
    /// fixed per-unit ordering is encoded as chain edges in `Gc`, a
    /// schedule passing this check also never overlaps two nodes on one
    /// unit.
    pub fn validate(&self, inst: &Instance, deadline: Time) -> Result<(), ScheduleError> {
        if self.start.len() != inst.node_count() {
            return Err(ScheduleError::WrongLength {
                expected: inst.node_count(),
                got: self.start.len(),
            });
        }
        for v in 0..inst.node_count() as NodeId {
            let finish = self.finish(v, inst);
            if finish > deadline {
                return Err(ScheduleError::DeadlineExceeded {
                    v,
                    finish,
                    deadline,
                });
            }
        }
        for (u, v) in inst.dag().edges() {
            if self.start(v) < self.finish(u, inst) {
                return Err(ScheduleError::PrecedenceViolated { u, v });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enhanced::UnitInfo;
    use cawo_graph::dag::DagBuilder;

    fn chain_instance() -> Instance {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let dag = b.build().unwrap();
        Instance::from_raw(
            dag,
            vec![5, 3, 2],
            vec![0, 0, 0],
            vec![UnitInfo {
                p_idle: 1,
                p_work: 2,
                is_link: false,
            }],
            0,
        )
    }

    #[test]
    fn valid_schedule_passes() {
        let inst = chain_instance();
        let s = Schedule::new(vec![0, 5, 8]);
        assert!(s.validate(&inst, 10).is_ok());
        assert_eq!(s.makespan(&inst), 10);
        assert_eq!(s.finish(0, &inst), 5);
    }

    #[test]
    fn shifted_schedule_passes_with_slack() {
        let inst = chain_instance();
        let s = Schedule::new(vec![2, 9, 14]);
        assert!(s.validate(&inst, 16).is_ok());
    }

    #[test]
    fn precedence_violation_detected() {
        let inst = chain_instance();
        let s = Schedule::new(vec![0, 4, 8]);
        assert_eq!(
            s.validate(&inst, 100).unwrap_err(),
            ScheduleError::PrecedenceViolated { u: 0, v: 1 }
        );
    }

    #[test]
    fn deadline_violation_detected() {
        let inst = chain_instance();
        let s = Schedule::new(vec![0, 5, 8]);
        assert!(matches!(
            s.validate(&inst, 9).unwrap_err(),
            ScheduleError::DeadlineExceeded {
                v: 2,
                finish: 10,
                ..
            }
        ));
    }

    #[test]
    fn wrong_length_detected() {
        let inst = chain_instance();
        let s = Schedule::new(vec![0, 5]);
        assert!(matches!(
            s.validate(&inst, 100).unwrap_err(),
            ScheduleError::WrongLength {
                expected: 3,
                got: 2
            }
        ));
    }

    #[test]
    fn set_start_mutates() {
        let mut s = Schedule::new(vec![0, 5, 8]);
        s.set_start(1, 6);
        assert_eq!(s.start(1), 6);
    }
}

//! Earliest and latest start times (EST / LST) with dynamic updates.
//!
//! §5.2: `EST` is computed Kahn-style from the sources; `LST(v)` starts
//! at `T - ω(v)` and is relaxed backwards. After the greedy fixes a task
//! at a start time, both bounds of the remaining tasks must be updated —
//! "these updates have to be made possibly for the whole graph, and we
//! use a precomputed topological order for this". This implementation
//! propagates changes with worklists ordered by topological position, so
//! the worst case matches the paper's `O(n + |Ec|)` while typical updates
//! touch only the affected region.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cawo_graph::NodeId;
use cawo_platform::Time;

use crate::enhanced::Instance;

/// Dynamic EST/LST state over an instance.
#[derive(Debug, Clone)]
pub struct Bounds {
    est: Vec<Time>,
    lst: Vec<Time>,
    scheduled: Vec<bool>,
    /// Topological position of every node (for ordered propagation).
    topo_pos: Vec<u32>,
    deadline: Time,
}

impl Bounds {
    /// Computes initial EST/LST for deadline `T`. Requires
    /// `T >= asap makespan`, otherwise some `LST < EST` (check with
    /// [`Bounds::is_feasible`]).
    pub fn new(inst: &Instance, deadline: Time) -> Self {
        let n = inst.node_count();
        let mut est = vec![0 as Time; n];
        for &u in inst.topo_order() {
            let f = est[u as usize] + inst.exec(u);
            for &v in inst.dag().successors(u) {
                est[v as usize] = est[v as usize].max(f);
            }
        }
        let mut lst: Vec<Time> = (0..n as NodeId)
            .map(|v| deadline.saturating_sub(inst.exec(v)))
            .collect();
        for &v in inst.topo_order().iter().rev() {
            for &u in inst.dag().predecessors(v) {
                let cand = lst[v as usize].saturating_sub(inst.exec(u));
                lst[u as usize] = lst[u as usize].min(cand);
            }
        }
        let mut topo_pos = vec![0u32; n];
        for (i, &v) in inst.topo_order().iter().enumerate() {
            topo_pos[v as usize] = i as u32;
        }
        Bounds {
            est,
            lst,
            scheduled: vec![false; n],
            topo_pos,
            deadline,
        }
    }

    /// Earliest start time of `v` (its fixed start once scheduled).
    pub fn est(&self, v: NodeId) -> Time {
        self.est[v as usize]
    }

    /// Latest start time of `v` (its fixed start once scheduled).
    pub fn lst(&self, v: NodeId) -> Time {
        self.lst[v as usize]
    }

    /// Slack `s(v) = LST(v) - EST(v)` (§5.2).
    pub fn slack(&self, v: NodeId) -> Time {
        self.lst[v as usize].saturating_sub(self.est[v as usize])
    }

    /// Whether `v` has been fixed.
    pub fn is_scheduled(&self, v: NodeId) -> bool {
        self.scheduled[v as usize]
    }

    /// The deadline these bounds were computed for.
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// True iff every node satisfies `EST <= LST` and can still finish by
    /// the deadline — i.e. the deadline is achievable (it is iff
    /// `T >= ASAP makespan`). The explicit finish check guards against
    /// the saturating `T - ω(v)` initialisation masking `ω(v) > T`.
    pub fn is_feasible(&self, inst: &Instance) -> bool {
        (0..self.est.len() as NodeId).all(|v| {
            let e = self.est[v as usize];
            e <= self.lst[v as usize] && e + inst.exec(v) <= self.deadline
        })
    }

    /// Fixes task `v` to start at `start ∈ [EST(v), LST(v)]` and
    /// propagates the tightened bounds through the graph.
    pub fn fix(&mut self, inst: &Instance, v: NodeId, start: Time) {
        debug_assert!(!self.scheduled[v as usize], "task fixed twice");
        debug_assert!(
            start >= self.est[v as usize] && start <= self.lst[v as usize],
            "start {start} outside [{}, {}] for node {v}",
            self.est[v as usize],
            self.lst[v as usize]
        );
        self.scheduled[v as usize] = true;
        self.est[v as usize] = start;
        self.lst[v as usize] = start;

        // Forward: raise EST of (transitive) successors.
        let mut fwd: BinaryHeap<Reverse<(u32, NodeId)>> = BinaryHeap::new();
        for &s in inst.dag().successors(v) {
            fwd.push(Reverse((self.topo_pos[s as usize], s)));
        }
        let mut last: Option<NodeId> = None;
        while let Some(Reverse((_, w))) = fwd.pop() {
            if last == Some(w) {
                continue; // deduplicate heap entries
            }
            last = Some(w);
            if self.scheduled[w as usize] {
                continue;
            }
            let mut e = 0;
            for &u in inst.dag().predecessors(w) {
                e = e.max(self.est[u as usize] + inst.exec(u));
            }
            if e > self.est[w as usize] {
                self.est[w as usize] = e;
                for &s in inst.dag().successors(w) {
                    fwd.push(Reverse((self.topo_pos[s as usize], s)));
                }
            }
        }

        // Backward: lower LST of (transitive) predecessors.
        let mut bwd: BinaryHeap<(u32, NodeId)> = BinaryHeap::new();
        for &p in inst.dag().predecessors(v) {
            bwd.push((self.topo_pos[p as usize], p));
        }
        let mut last: Option<NodeId> = None;
        while let Some((_, w)) = bwd.pop() {
            if last == Some(w) {
                continue;
            }
            last = Some(w);
            if self.scheduled[w as usize] {
                continue;
            }
            let mut l = self.deadline.saturating_sub(inst.exec(w));
            for &s in inst.dag().successors(w) {
                l = l.min(self.lst[s as usize].saturating_sub(inst.exec(w)));
            }
            if l < self.lst[w as usize] {
                self.lst[w as usize] = l;
                for &p in inst.dag().predecessors(w) {
                    bwd.push((self.topo_pos[p as usize], p));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enhanced::UnitInfo;
    use cawo_graph::dag::DagBuilder;

    /// Chain 0 -> 1 -> 2 with exec 5, 3, 2 on one unit.
    fn chain() -> Instance {
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        Instance::from_raw(
            b.build().unwrap(),
            vec![5, 3, 2],
            vec![0, 0, 0],
            vec![UnitInfo {
                p_idle: 0,
                p_work: 1,
                is_link: false,
            }],
            0,
        )
    }

    /// Diamond with two parallel middle tasks on separate units.
    fn diamond() -> Instance {
        let mut b = DagBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        Instance::from_raw(
            b.build().unwrap(),
            vec![2, 6, 3, 2],
            vec![0, 0, 1, 0],
            vec![
                UnitInfo {
                    p_idle: 0,
                    p_work: 1,
                    is_link: false,
                },
                UnitInfo {
                    p_idle: 0,
                    p_work: 1,
                    is_link: false,
                },
            ],
            0,
        )
    }

    #[test]
    fn initial_bounds_on_chain() {
        let inst = chain();
        let b = Bounds::new(&inst, 15);
        assert_eq!((b.est(0), b.est(1), b.est(2)), (0, 5, 8));
        assert_eq!((b.lst(0), b.lst(1), b.lst(2)), (5, 10, 13));
        assert_eq!(b.slack(0), 5);
        assert!(b.is_feasible(&inst));
    }

    #[test]
    fn tight_deadline_has_zero_slack() {
        let inst = chain();
        let b = Bounds::new(&inst, 10); // ASAP makespan
        for v in 0..3 {
            assert_eq!(b.slack(v), 0);
            assert_eq!(b.est(v), b.lst(v));
        }
        assert!(b.is_feasible(&inst));
    }

    #[test]
    fn infeasible_deadline_detected() {
        let inst = chain();
        let b = Bounds::new(&inst, 9);
        assert!(!b.is_feasible(&inst));
    }

    #[test]
    fn diamond_bounds() {
        let inst = diamond();
        // ASAP: 0 at 0, 1 at 2, 2 at 2, 3 at 8 ⇒ makespan 10.
        let b = Bounds::new(&inst, 12);
        assert_eq!(b.est(3), 8);
        assert_eq!(b.lst(3), 10);
        // Task 2 (exec 3) must finish before 3 starts: LST = LST(3)-3 = 7.
        assert_eq!(b.lst(2), 7);
        assert_eq!(b.slack(2), 5);
        // Critical path 0->1->3 has slack 2 everywhere.
        assert_eq!(b.slack(0), 2);
        assert_eq!(b.slack(1), 2);
    }

    #[test]
    fn fix_propagates_forward() {
        let inst = chain();
        let mut b = Bounds::new(&inst, 15);
        b.fix(&inst, 0, 3); // push task 0 to its latest-3
        assert!(b.is_scheduled(0));
        assert_eq!(b.est(0), 3);
        assert_eq!(b.lst(0), 3);
        assert_eq!(b.est(1), 8);
        assert_eq!(b.est(2), 11);
        assert!(b.is_feasible(&inst));
    }

    #[test]
    fn fix_propagates_backward() {
        let inst = chain();
        let mut b = Bounds::new(&inst, 15);
        b.fix(&inst, 2, 8); // earliest allowed for task 2
        assert_eq!(b.lst(1), 5);
        assert_eq!(b.lst(0), 0);
        assert!(b.is_feasible(&inst));
    }

    #[test]
    fn fix_middle_tightens_both_sides() {
        let inst = diamond();
        let mut b = Bounds::new(&inst, 12);
        b.fix(&inst, 1, 4);
        assert_eq!(b.lst(0), 2); // 0 must finish by 4
        assert_eq!(b.est(3), 10); // 3 must wait for 1's finish at 10
        assert!(b.is_feasible(&inst));
    }

    #[test]
    fn fixing_all_tasks_yields_valid_schedule() {
        use crate::schedule::Schedule;
        let inst = diamond();
        let mut b = Bounds::new(&inst, 14);
        // Fix in an arbitrary (non-topological) order, always inside
        // [EST, LST]; the result must be a valid schedule.
        for &v in &[3u32, 0, 2, 1] {
            let s = (b.est(v) + b.lst(v)) / 2;
            b.fix(&inst, v, s);
        }
        let starts: Vec<Time> = (0..4).map(|v| b.est(v)).collect();
        let sched = Schedule::new(starts);
        assert!(sched.validate(&inst, 14).is_ok());
    }

    #[test]
    fn scheduled_nodes_do_not_move() {
        let inst = chain();
        let mut b = Bounds::new(&inst, 20);
        b.fix(&inst, 1, 9);
        let est1 = b.est(1);
        b.fix(&inst, 0, 4);
        assert_eq!(b.est(1), est1, "fixed task must not be re-bounded");
    }
}

//! Task scores driving the greedy processing order (§5.2).
//!
//! * **slack** `s(v) = LST(v) - EST(v)` — processed in *non-decreasing*
//!   order: tasks with little freedom are placed first.
//! * **pressure** `ρ(v) = ω(v) / (s(v) + ω(v)) ∈ [0, 1]` — processed in
//!   *non-increasing* order: tasks whose running time dominates their
//!   feasible window are placed first.
//!
//! Both scores optionally carry the power-heterogeneity weight
//! `wf(i) = (P_idle + P_work) / max_j (P_idle + P_work)` of the task's
//! processor: pressure is multiplied by `wf`, slack by its reciprocal
//! (because slack sorts ascending, §5.2).

use cawo_graph::NodeId;

use crate::bounds::Bounds;
use crate::enhanced::Instance;

/// The two base scores of §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Score {
    /// `s(v) = LST - EST`, ascending.
    Slack,
    /// `ρ(v) = ω / (s + ω)`, descending.
    Pressure,
}

/// Raw (possibly weighted) score value of a single task.
pub fn score_value(
    inst: &Instance,
    bounds: &Bounds,
    score: Score,
    weighted: bool,
    v: NodeId,
) -> f64 {
    let slack = bounds.slack(v) as f64;
    let omega = inst.exec(v) as f64;
    let wf = inst.unit_total_power(v) as f64 / inst.max_unit_total_power() as f64;
    match score {
        Score::Slack => {
            if weighted {
                slack / wf // reciprocal factor, §5.2
            } else {
                slack
            }
        }
        Score::Pressure => {
            let rho = omega / (slack + omega);
            if weighted {
                rho * wf
            } else {
                rho
            }
        }
    }
}

/// The greedy processing order: all nodes sorted by score (ties broken
/// by node id for determinism).
pub fn score_order(inst: &Instance, bounds: &Bounds, score: Score, weighted: bool) -> Vec<NodeId> {
    let n = inst.node_count();
    let values: Vec<f64> = (0..n as NodeId)
        .map(|v| score_value(inst, bounds, score, weighted, v))
        .collect();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    match score {
        Score::Slack => order.sort_by(|&a, &b| {
            values[a as usize]
                .partial_cmp(&values[b as usize])
                // cawo-lint: allow(panic-path) — score_value builds the
                // values from finite integer bounds; NaN would silently
                // corrupt the order, so it must fail loudly instead.
                .expect("scores are finite")
                .then(a.cmp(&b))
        }),
        Score::Pressure => order.sort_by(|&a, &b| {
            values[b as usize]
                .partial_cmp(&values[a as usize])
                // cawo-lint: allow(panic-path) — score_value builds the
                // values from finite integer bounds; NaN would silently
                // corrupt the order, so it must fail loudly instead.
                .expect("scores are finite")
                .then(a.cmp(&b))
        }),
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enhanced::UnitInfo;
    use cawo_graph::dag::DagBuilder;

    /// Three independent tasks: exec 10, 2, 6 on units with total powers
    /// 10, 100, 100.
    fn instance() -> Instance {
        let dag = DagBuilder::new(3).build().unwrap();
        Instance::from_raw(
            dag,
            vec![10, 2, 6],
            vec![0, 1, 1],
            vec![
                UnitInfo {
                    p_idle: 5,
                    p_work: 5,
                    is_link: false,
                },
                UnitInfo {
                    p_idle: 50,
                    p_work: 50,
                    is_link: false,
                },
            ],
            0,
        )
    }

    #[test]
    fn slack_values() {
        let inst = instance();
        let b = Bounds::new(&inst, 20);
        // Independent tasks: slack = T - exec.
        assert_eq!(b.slack(0), 10);
        assert_eq!(b.slack(1), 18);
        assert_eq!(b.slack(2), 14);
        assert_eq!(score_value(&inst, &b, Score::Slack, false, 0), 10.0);
    }

    #[test]
    fn pressure_values() {
        let inst = instance();
        let b = Bounds::new(&inst, 20);
        // ρ = ω/(s+ω): task 0: 10/20 = 0.5, task 1: 2/20 = 0.1.
        assert_eq!(score_value(&inst, &b, Score::Pressure, false, 0), 0.5);
        assert_eq!(score_value(&inst, &b, Score::Pressure, false, 1), 0.1);
        // Pressure 1 when slack is 0.
        let tight = Bounds::new(&inst, 10);
        assert_eq!(score_value(&inst, &tight, Score::Pressure, false, 0), 1.0);
    }

    #[test]
    fn pressure_in_unit_range() {
        let inst = instance();
        let b = Bounds::new(&inst, 100);
        for v in 0..3 {
            let p = score_value(&inst, &b, Score::Pressure, false, v);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn slack_order_is_ascending() {
        let inst = instance();
        let b = Bounds::new(&inst, 20);
        assert_eq!(score_order(&inst, &b, Score::Slack, false), vec![0, 2, 1]);
    }

    #[test]
    fn pressure_order_is_descending() {
        let inst = instance();
        let b = Bounds::new(&inst, 20);
        // ρ: 0.5, 0.1, 0.3 ⇒ order 0, 2, 1.
        assert_eq!(
            score_order(&inst, &b, Score::Pressure, false,),
            vec![0, 2, 1]
        );
    }

    #[test]
    fn weights_prefer_power_hungry_units() {
        let inst = instance();
        let b = Bounds::new(&inst, 20);
        // Unweighted pressure ranks task 0 (0.5) above task 2 (0.3); the
        // weight wf = 0.1 for unit 0 vs 1.0 for unit 1 flips them.
        let unweighted = score_order(&inst, &b, Score::Pressure, false);
        let weighted = score_order(&inst, &b, Score::Pressure, true);
        assert_eq!(unweighted[0], 0);
        assert_eq!(weighted[0], 2, "power-hungry unit should come first");
        // Weighted slack divides by wf: task 0's slack 10 becomes 100,
        // pushing it last.
        let wslack = score_order(&inst, &b, Score::Slack, true);
        assert_eq!(*wslack.last().unwrap(), 0);
    }

    #[test]
    fn ties_break_by_id() {
        let dag = DagBuilder::new(3).build().unwrap();
        let inst = Instance::from_raw(
            dag,
            vec![5, 5, 5],
            vec![0, 0, 0],
            vec![UnitInfo {
                p_idle: 1,
                p_work: 1,
                is_link: false,
            }],
            0,
        );
        let b = Bounds::new(&inst, 30);
        assert_eq!(score_order(&inst, &b, Score::Slack, false), vec![0, 1, 2]);
        assert_eq!(
            score_order(&inst, &b, Score::Pressure, false),
            vec![0, 1, 2]
        );
    }
}

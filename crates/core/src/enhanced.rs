//! The communication-enhanced DAG `Gc = (Vc, Ec, ω)` of §3.
//!
//! Given a workflow, a cluster and a fixed [`Mapping`], every edge whose
//! endpoints live on different processors becomes a *communication task*
//! executed by the fictional processor of that directed link. The
//! enhanced DAG contains:
//!
//! * the original precedence edges between co-located tasks (`E \ E'`),
//! * `(v_i, v_{ij})` and `(v_{ij}, v_j)` for every communication,
//! * chain edges expressing the given execution order on every compute
//!   processor, and the given communication order on every link (`E''`).
//!
//! After this construction there are no communication *costs* left — only
//! tasks with running times — which is what every algorithm in this
//! repository operates on.

use cawo_graph::dag::{Dag, DagBuilder};
use cawo_graph::{NodeId, Workflow};
use cawo_heft::Mapping;
use cawo_platform::{Cluster, Power, ProcId, Time};

use crate::schedule::Schedule;

/// Execution-unit index: `0..P` are the compute processors, higher ids
/// are the (lazily materialised) link processors that carry at least one
/// communication.
pub type UnitId = u32;

/// What a `Gc` node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An original workflow task.
    Task,
    /// A communication task `v_{ij}` for the original edge `(i, j)`.
    Comm {
        /// Source task of the communicated edge.
        from: NodeId,
        /// Target task of the communicated edge.
        to: NodeId,
    },
}

/// One execution unit (compute processor or materialised link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitInfo {
    /// Idle power of this unit.
    pub p_idle: Power,
    /// Working power of this unit.
    pub p_work: Power,
    /// `true` for fictional link processors.
    pub is_link: bool,
}

/// A scheduling instance: enhanced DAG, execution times, unit assignment
/// and power data — everything §5's algorithms need.
#[derive(Debug, Clone)]
pub struct Instance {
    n_original: usize,
    dag: Dag,
    kind: Vec<NodeKind>,
    exec: Vec<Time>,
    unit_of: Vec<UnitId>,
    units: Vec<UnitInfo>,
    unit_order: Vec<Vec<NodeId>>,
    topo: Vec<NodeId>,
    total_idle: Power,
    max_unit_total_power: Power,
}

impl Instance {
    /// Builds the enhanced instance from a workflow, cluster and mapping.
    ///
    /// Communication tasks sharing a link are ordered by the mapping's
    /// seed finish time of their source task (ties by source/target id) —
    /// the order in which HEFT would issue them. This realises the
    /// assumption that "the order of communications is also given with
    /// the mapping" (§3).
    pub fn build(wf: &Workflow, cluster: &Cluster, mapping: &Mapping) -> Self {
        let n = wf.task_count();
        let dag0 = wf.dag();
        let p = cluster.proc_count();

        // Compute units first; link units appended on demand.
        let mut units: Vec<UnitInfo> = (0..p)
            .map(|q| {
                let cp = cluster.proc(q as ProcId);
                UnitInfo {
                    p_idle: cp.p_idle,
                    p_work: cp.p_work,
                    is_link: false,
                }
            })
            .collect();
        // BTreeMap keeps any future iteration over link units in
        // deterministic key order (docs/CONCURRENCY.md); today the map
        // is only used for entry/lookup.
        let mut link_unit: std::collections::BTreeMap<u32, UnitId> =
            std::collections::BTreeMap::new();

        let mut kind: Vec<NodeKind> = (0..n).map(|_| NodeKind::Task).collect();
        let mut exec: Vec<Time> = (0..n as NodeId)
            .map(|v| cluster.exec_time(wf.node_weight(v), mapping.proc_of(v)))
            .collect();
        let mut unit_of: Vec<UnitId> = (0..n as NodeId).map(|v| mapping.proc_of(v)).collect();

        // One comm node per cross-processor edge, plus its Gc edges.
        let mut builder = DagBuilder::new(n);
        let mut comm_nodes: Vec<(UnitId, NodeId)> = Vec::new(); // (link unit, comm node)
        for (u, v) in dag0.edges() {
            let pu = mapping.proc_of(u);
            let pv = mapping.proc_of(v);
            if pu == pv {
                builder.add_edge(u, v);
            } else {
                // cawo-lint: allow(panic-path) — (u, v) comes from
                // `dag0.edges()`, so the edge and its weight exist.
                let c = wf.edge_weight_between(u, v).expect("edge exists");
                let link = cluster.link_id(pu, pv);
                let lu = *link_unit.entry(link).or_insert_with(|| {
                    let (p_idle, p_work) = cluster.link_power(link);
                    units.push(UnitInfo {
                        p_idle,
                        p_work,
                        is_link: true,
                    });
                    (units.len() - 1) as UnitId
                });
                let comm = builder.add_node();
                kind.push(NodeKind::Comm { from: u, to: v });
                exec.push(cluster.comm_time(c));
                unit_of.push(lu);
                comm_nodes.push((lu, comm));
                builder.add_edge(u, comm);
                builder.add_edge(comm, v);
            }
        }

        // Chain edges fixing the order on every compute processor.
        for q in 0..p as ProcId {
            for w in mapping.order_on(q).windows(2) {
                builder.add_edge(w[0], w[1]);
            }
        }

        // Order of communication tasks on each link (E''): by seed finish
        // of the source task, ties by (source, target).
        let mut unit_order: Vec<Vec<NodeId>> = vec![Vec::new(); units.len()];
        for (q, slot) in unit_order.iter_mut().enumerate().take(p) {
            *slot = mapping.order_on(q as ProcId).to_vec();
        }
        for &(lu, comm) in &comm_nodes {
            unit_order[lu as usize].push(comm);
        }
        for (u, order) in unit_order.iter_mut().enumerate() {
            if units[u].is_link {
                order.sort_by_key(|&cn| match kind[cn as usize] {
                    NodeKind::Comm { from, to } => (mapping.seed_finish(from), from, to),
                    // cawo-lint: allow(panic-path) — `unit_order` for a
                    // link unit is populated exclusively with Comm nodes
                    // in the loop above.
                    NodeKind::Task => unreachable!("links only hold comm tasks"),
                });
                for w in order.windows(2) {
                    builder.add_edge(w[0], w[1]);
                }
            }
        }

        let dag = builder
            .build()
            // cawo-lint: allow(panic-path) — Gc adds edges only along
            // precedences and per-unit seed order, both acyclic by the
            // mapping's validity (§4); a cycle means a corrupt mapping.
            .expect("mapping order is consistent with precedences, so Gc is acyclic");
        // cawo-lint: allow(panic-path) — same invariant: `build` above
        // already proved acyclicity.
        let topo = dag.topological_order().expect("Gc is acyclic");
        let total_idle = cluster.total_idle_power();
        let max_unit_total_power = units.iter().map(|u| u.p_idle + u.p_work).max().unwrap_or(1);

        Instance {
            n_original: n,
            dag,
            kind,
            exec,
            unit_of,
            units,
            unit_order,
            topo,
            total_idle,
            max_unit_total_power,
        }
    }

    /// Builds a bare instance directly from `Gc`-level data — used by the
    /// exact solvers and tests to craft adversarial instances without a
    /// workflow/mapping detour. Chain edges for `unit_order` must already
    /// be part of `dag`.
    pub fn from_raw(
        dag: Dag,
        exec: Vec<Time>,
        unit_of: Vec<UnitId>,
        units: Vec<UnitInfo>,
        extra_idle: Power,
    ) -> Self {
        let n = dag.node_count();
        assert_eq!(exec.len(), n);
        assert_eq!(unit_of.len(), n);
        assert!(
            exec.iter().all(|&e| e > 0),
            "execution times must be positive"
        );
        let mut unit_order: Vec<Vec<NodeId>> = vec![Vec::new(); units.len()];
        let topo = dag
            .topological_order()
            // cawo-lint: allow(panic-path) — `from_raw`'s documented
            // precondition: callers hand it an already-acyclic `Gc` dag.
            .expect("raw instance must be acyclic");
        for &v in &topo {
            unit_order[unit_of[v as usize] as usize].push(v);
        }
        let total_idle = units.iter().map(|u| u.p_idle).sum::<Power>() + extra_idle;
        let max_unit_total_power = units.iter().map(|u| u.p_idle + u.p_work).max().unwrap_or(1);
        Instance {
            n_original: n,
            kind: vec![NodeKind::Task; n],
            dag,
            exec,
            unit_of,
            units,
            unit_order,
            topo,
            total_idle,
            max_unit_total_power,
        }
    }

    /// Total number of `Gc` nodes `N = n + |E'|`.
    pub fn node_count(&self) -> usize {
        self.dag.node_count()
    }

    /// Number of original workflow tasks `n`.
    pub fn original_task_count(&self) -> usize {
        self.n_original
    }

    /// Number of communication tasks `|E'|`.
    pub fn comm_task_count(&self) -> usize {
        self.node_count() - self.n_original
    }

    /// The enhanced DAG `Gc`.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// What node `v` represents.
    pub fn kind(&self, v: NodeId) -> NodeKind {
        self.kind[v as usize]
    }

    /// Running time `ω(v)` (execution or communication time).
    pub fn exec(&self, v: NodeId) -> Time {
        self.exec[v as usize]
    }

    /// All running times, indexed by node.
    pub fn exec_times(&self) -> &[Time] {
        &self.exec
    }

    /// Execution unit of node `v`.
    pub fn unit_of(&self, v: NodeId) -> UnitId {
        self.unit_of[v as usize]
    }

    /// Number of execution units (compute processors + used links).
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Power data of unit `u`.
    pub fn unit(&self, u: UnitId) -> UnitInfo {
        self.units[u as usize]
    }

    /// Working power of the unit executing node `v`.
    pub fn work_power(&self, v: NodeId) -> Power {
        self.units[self.unit_of[v as usize] as usize].p_work
    }

    /// `P_idle + P_work` of the unit executing `v` (used by the weighted
    /// scores and the greedy budget decrement).
    pub fn unit_total_power(&self, v: NodeId) -> Power {
        let u = self.units[self.unit_of[v as usize] as usize];
        u.p_idle + u.p_work
    }

    /// `max_u (P_idle + P_work)` over all units.
    pub fn max_unit_total_power(&self) -> Power {
        self.max_unit_total_power
    }

    /// Execution order of nodes on unit `u` (fixed by the mapping).
    pub fn unit_order(&self, u: UnitId) -> &[NodeId] {
        &self.unit_order[u as usize]
    }

    /// Total idle power of the *whole* platform (including unused links).
    pub fn total_idle_power(&self) -> Power {
        self.total_idle
    }

    /// A topological order of `Gc`, precomputed once.
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// The ASAP schedule: every node at its earliest start time (§5.1).
    /// Its makespan `D` is the tightest feasible deadline.
    pub fn asap_schedule(&self) -> Schedule {
        let mut start = vec![0 as Time; self.node_count()];
        for &u in &self.topo {
            let finish = start[u as usize] + self.exec[u as usize];
            for &v in self.dag.successors(u) {
                start[v as usize] = start[v as usize].max(finish);
            }
        }
        Schedule::new(start)
    }

    /// The ASAP makespan `D` (basis of the deadline factors, §6.1).
    pub fn asap_makespan(&self) -> Time {
        self.asap_schedule().makespan(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cawo_graph::WorkflowBuilder;
    use cawo_heft::heft_schedule;

    /// Workflow: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 (diamond).
    fn diamond() -> Workflow {
        let mut b = WorkflowBuilder::new("diamond");
        let s = b.add_task(8);
        let l = b.add_task(16);
        let r = b.add_task(16);
        let t = b.add_task(8);
        b.add_dependence(s, l, 4);
        b.add_dependence(s, r, 4);
        b.add_dependence(l, t, 4);
        b.add_dependence(r, t, 4);
        b.build().unwrap()
    }

    #[test]
    fn same_processor_has_no_comm_tasks() {
        let wf = diamond();
        let cluster = Cluster::tiny(&[3], 0);
        let mapping = Mapping::single_processor(&wf, &cluster, 0);
        let inst = Instance::build(&wf, &cluster, &mapping);
        assert_eq!(inst.node_count(), 4);
        assert_eq!(inst.comm_task_count(), 0);
        // The order chain serialises everything on unit 0.
        assert_eq!(inst.unit_order(0).len(), 4);
    }

    #[test]
    fn cross_processor_edges_become_comm_tasks() {
        let wf = diamond();
        let cluster = Cluster::tiny(&[3, 3], 0);
        // Force 1 on the other processor: edges (0,1) and (1,3) cross.
        let mapping = Mapping::from_parts(
            &wf,
            &cluster,
            vec![0, 1, 0, 0],
            vec![vec![0, 2, 3], vec![1]],
            vec![0, 8, 8, 24],
            vec![8, 24, 24, 32],
        )
        .unwrap();
        let inst = Instance::build(&wf, &cluster, &mapping);
        assert_eq!(inst.comm_task_count(), 2);
        assert_eq!(inst.node_count(), 6);
        // Comm nodes carry NodeKind::Comm with the original endpoints.
        let comms: Vec<_> = (4..6)
            .map(|v| match inst.kind(v as NodeId) {
                NodeKind::Comm { from, to } => (from, to),
                NodeKind::Task => panic!("expected comm"),
            })
            .collect();
        assert!(comms.contains(&(0, 1)));
        assert!(comms.contains(&(1, 3)));
        // Link units were materialised (both directions used).
        assert_eq!(inst.unit_count(), 2 + 2);
        // Every comm node sits between its endpoints.
        for v in 4..6 as NodeId {
            if let NodeKind::Comm { from, to } = inst.kind(v) {
                assert!(inst.dag().edge_position(from, v).is_some());
                assert!(inst.dag().edge_position(v, to).is_some());
            }
        }
    }

    #[test]
    fn comm_exec_matches_comm_time() {
        let wf = diamond();
        let cluster = Cluster::tiny(&[3, 3], 0);
        let mapping = Mapping::from_parts(
            &wf,
            &cluster,
            vec![0, 1, 0, 0],
            vec![vec![0, 2, 3], vec![1]],
            vec![0, 8, 8, 24],
            vec![8, 24, 24, 32],
        )
        .unwrap();
        let inst = Instance::build(&wf, &cluster, &mapping);
        for v in 4..6 as NodeId {
            assert_eq!(inst.exec(v), cluster.comm_time(4));
        }
    }

    #[test]
    fn asap_matches_hand_computation() {
        let wf = diamond();
        let cluster = Cluster::tiny(&[3], 0); // PT4 speed 12 ⇒ exec = ceil(w*8/12)
        let mapping = Mapping::single_processor(&wf, &cluster, 0);
        let inst = Instance::build(&wf, &cluster, &mapping);
        // exec: 8*8/12=6 (ceil 16*8/12=11): tasks 6,11,11,6 in chain.
        assert_eq!(inst.exec(0), 6);
        assert_eq!(inst.exec(1), 11);
        let asap = inst.asap_schedule();
        assert_eq!(asap.makespan(&inst), 6 + 11 + 11 + 6);
    }

    #[test]
    fn asap_is_valid_and_earliest() {
        let wf = diamond();
        let cluster = Cluster::tiny(&[0, 5], 1);
        let mapping = heft_schedule(&wf, &cluster);
        let inst = Instance::build(&wf, &cluster, &mapping);
        let asap = inst.asap_schedule();
        let t = asap.makespan(&inst);
        assert!(asap.validate(&inst, t).is_ok());
        // No node can start earlier than ASAP.
        for &v in inst.topo_order() {
            let est = inst
                .dag()
                .predecessors(v)
                .iter()
                .map(|&u| asap.start(u) + inst.exec(u))
                .max()
                .unwrap_or(0);
            assert_eq!(asap.start(v), est);
        }
    }

    #[test]
    fn heft_mapping_builds_consistent_instance() {
        use cawo_graph::generator::{generate, Family, GeneratorConfig};
        let wf = generate(&GeneratorConfig::new(Family::Eager, 120, 5));
        let cluster = Cluster::from_type_counts("mini", &[1, 1, 1, 1, 1, 1], 5);
        let mapping = heft_schedule(&wf, &cluster);
        let inst = Instance::build(&wf, &cluster, &mapping);
        // Units hold each node exactly once.
        let mut seen = vec![false; inst.node_count()];
        for u in 0..inst.unit_count() as UnitId {
            for &v in inst.unit_order(u) {
                assert_eq!(inst.unit_of(v), u);
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Topological order covers Gc.
        assert!(inst.dag().is_topological_order(inst.topo_order()));
        // ASAP is valid.
        let asap = inst.asap_schedule();
        assert!(asap.validate(&inst, asap.makespan(&inst)).is_ok());
    }

    #[test]
    fn from_raw_roundtrip() {
        use cawo_graph::dag::DagBuilder;
        let mut b = DagBuilder::new(2);
        b.add_edge(0, 1);
        let dag = b.build().unwrap();
        let units = vec![UnitInfo {
            p_idle: 0,
            p_work: 1,
            is_link: false,
        }];
        let inst = Instance::from_raw(dag, vec![3, 4], vec![0, 0], units, 0);
        assert_eq!(inst.node_count(), 2);
        assert_eq!(inst.exec(1), 4);
        assert_eq!(inst.unit_order(0), &[0, 1]);
        assert_eq!(inst.asap_makespan(), 7);
        assert_eq!(inst.total_idle_power(), 0);
        assert_eq!(inst.max_unit_total_power(), 1);
    }
}

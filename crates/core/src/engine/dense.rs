//! The per-time-unit cost engine (the original `PowerGrid`).

use cawo_platform::{PowerProfile, Time};

use crate::cost::Cost;
use crate::enhanced::Instance;
use crate::schedule::Schedule;

use super::CostEngine;

/// Per-time-unit working-power grid with O(1) single-unit updates.
///
/// State and build time are proportional to the horizon `T` — the
/// pseudo-polynomial trap §3's definition invites, which is exactly why
/// this engine is kept only as the oracle against which the
/// interval-sparse [`super::IntervalEngine`] is verified. A candidate
/// move is evaluated in `O(|shift|)` time units (the symmetric
/// difference of the old and new execution windows).
#[derive(Debug, Clone)]
pub struct DenseGrid {
    /// Working power per time unit.
    work: Vec<i64>,
    /// `d(t) = G(t) - Σ P_idle` per time unit (may be negative).
    headroom: Vec<i64>,
    horizon: Time,
}

impl DenseGrid {
    /// Builds the grid for `sched` over the profile's horizon. The
    /// schedule must respect the deadline.
    pub fn new(inst: &Instance, sched: &Schedule, profile: &PowerProfile) -> Self {
        let horizon = profile.deadline();
        let idle = inst.total_idle_power() as i64;
        let mut work = vec![0i64; horizon as usize];
        for v in 0..inst.node_count() as cawo_graph::NodeId {
            let w = inst.work_power(v) as i64;
            let s = sched.start(v) as usize;
            let e = sched.finish(v, inst) as usize;
            debug_assert!(e <= horizon as usize, "schedule exceeds profile horizon");
            for slot in &mut work[s..e] {
                *slot += w;
            }
        }
        let mut headroom = vec![0i64; horizon as usize];
        for j in 0..profile.interval_count() {
            let (b, e) = profile.interval_span(j);
            let d = profile.budget(j) as i64 - idle;
            for slot in &mut headroom[b as usize..e as usize] {
                *slot = d;
            }
        }
        DenseGrid {
            work,
            headroom,
            horizon,
        }
    }

    /// Cost contribution of one time unit.
    #[inline]
    fn unit_cost(&self, t: usize) -> i64 {
        (self.work[t] - self.headroom[t]).max(0)
    }

    /// Cost contribution of one time unit if its working power changed
    /// by `delta`.
    #[inline]
    fn unit_cost_with(&self, t: usize, delta: i64) -> i64 {
        (self.work[t] + delta - self.headroom[t]).max(0)
    }
}

impl CostEngine for DenseGrid {
    const NAME: &'static str = "dense";

    fn build(inst: &Instance, sched: &Schedule, profile: &PowerProfile) -> Self {
        DenseGrid::new(inst, sched, profile)
    }

    fn total_cost(&self) -> Cost {
        let mut c: i64 = 0;
        for t in 0..self.work.len() {
            c += self.unit_cost(t);
        }
        c as Cost
    }

    fn place_delta(&self, start: Time, len: Time, delta: i64) -> i64 {
        cawo_obs::inc(cawo_obs::Ctr::EnginePriceDense);
        if len == 0 || delta == 0 {
            return 0;
        }
        assert!(
            start + len <= self.horizon,
            "placement exceeds profile horizon"
        );
        let mut d = 0i64;
        for t in start..start + len {
            d += self.unit_cost_with(t as usize, delta) - self.unit_cost(t as usize);
        }
        d
    }

    fn apply_place(&mut self, start: Time, len: Time, delta: i64) {
        if len == 0 || delta == 0 {
            return;
        }
        assert!(
            start + len <= self.horizon,
            "placement exceeds profile horizon"
        );
        for slot in &mut self.work[start as usize..(start + len) as usize] {
            *slot += delta;
        }
    }

    fn horizon(&self) -> Time {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::carbon_cost;
    use crate::enhanced::UnitInfo;
    use cawo_graph::dag::DagBuilder;

    /// Two independent tasks on two units: exec 4 & 2, work power 10 & 5.
    fn two_task_instance() -> Instance {
        let dag = DagBuilder::new(2).build().unwrap();
        Instance::from_raw(
            dag,
            vec![4, 2],
            vec![0, 1],
            vec![
                UnitInfo {
                    p_idle: 3,
                    p_work: 10,
                    is_link: false,
                },
                UnitInfo {
                    p_idle: 2,
                    p_work: 5,
                    is_link: false,
                },
            ],
            0,
        )
    }

    #[test]
    fn grid_total_matches_sweep() {
        let inst = two_task_instance();
        let profile = PowerProfile::from_parts(vec![0, 4, 8], vec![10, 6]);
        let s = Schedule::new(vec![0, 4]);
        let grid = DenseGrid::new(&inst, &s, &profile);
        // Grid counts only the work-vs-headroom overshoot; with
        // G >= idle here that's the same as the carbon cost.
        assert_eq!(grid.total_cost(), carbon_cost(&inst, &s, &profile));
        assert_eq!(grid.horizon(), 8);
    }

    #[test]
    fn grid_shift_delta_matches_recost() {
        let inst = two_task_instance();
        let profile = PowerProfile::from_parts(vec![0, 4, 8], vec![12, 18]);
        let s = Schedule::new(vec![0, 0]);
        let grid = DenseGrid::new(&inst, &s, &profile);
        // Move task 0 (len 4, w 10) from 0 to each feasible start.
        for ns in 0..=4 as Time {
            let mut s2 = s.clone();
            s2.set_start(0, ns);
            let expected =
                carbon_cost(&inst, &s2, &profile) as i64 - carbon_cost(&inst, &s, &profile) as i64;
            assert_eq!(grid.shift_delta(0, 4, 10, ns), expected, "ns={ns}");
        }
    }

    #[test]
    fn grid_apply_then_total_is_consistent() {
        let inst = two_task_instance();
        let profile = PowerProfile::from_parts(vec![0, 4, 8], vec![12, 18]);
        let mut s = Schedule::new(vec![0, 0]);
        let mut grid = DenseGrid::new(&inst, &s, &profile);
        let before = grid.total_cost() as i64;
        let delta = grid.shift_delta(0, 4, 10, 3);
        grid.apply_shift(0, 4, 10, 3);
        s.set_start(0, 3);
        assert_eq!(grid.total_cost() as i64, before + delta);
        assert_eq!(grid.total_cost(), carbon_cost(&inst, &s, &profile));
    }

    #[test]
    fn zero_power_shift_is_free() {
        let inst = two_task_instance();
        let profile = PowerProfile::uniform(10, 0);
        let s = Schedule::new(vec![0, 0]);
        let grid = DenseGrid::new(&inst, &s, &profile);
        assert_eq!(grid.shift_delta(0, 4, 0, 6), 0);
    }
}

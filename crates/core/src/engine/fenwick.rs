//! The Fenwick (binary indexed tree) cost engine and the static
//! prefix-sum cost oracle the exact solvers query.
//!
//! Two related structures live here:
//!
//! * [`PrefixCost`] — a *static* window-cost oracle for a constant
//!   platform power: `Σ_{t<x} max(p − G(t), 0)` in `O(log J)` per
//!   query after `O(J)` prefix-sum preprocessing. This is the
//!   "interval-sum" primitive the uniprocessor dynamic programs of
//!   `cawo_exact::dp` evaluate millions of times, extracted here so the
//!   DP, the E-schedule transformation and future solvers share one
//!   audited implementation.
//! * [`FenwickEngine`] — a [`CostEngine`] backend that stores the
//!   working-power *difference array* in a [`Fenwick`] tree over time
//!   units: the level at any time is a prefix sum, answered in
//!   `O(log T)` without maintaining coalesced segments. Piece sweeps
//!   (cost deltas) walk the task breakpoints and profile boundaries
//!   inside the touched window only, so updates cost
//!   `O(log T + breakpoints touched)` — between the dense oracle
//!   (`O(window length)`) and the interval engine (`O(log N)` lookups,
//!   `O(N)` memory).

use std::collections::BTreeMap;
use std::ops::Bound::Excluded;

use cawo_graph::NodeId;
use cawo_platform::{PowerProfile, Time};

use crate::cost::Cost;
use crate::enhanced::Instance;
use crate::schedule::Schedule;

use super::CostEngine;

/// A classic binary indexed tree over `i64`: point updates and prefix
/// sums in `O(log n)`.
#[derive(Debug, Clone)]
pub struct Fenwick {
    /// 1-based implicit tree.
    tree: Vec<i64>,
}

impl Fenwick {
    /// A tree over `n` slots, all zero.
    pub fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Whether the tree has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` at slot `i`.
    pub fn add(&mut self, i: usize, delta: i64) {
        debug_assert!(i < self.len());
        let mut k = i + 1;
        while k < self.tree.len() {
            self.tree[k] += delta;
            k += k & k.wrapping_neg();
        }
    }

    /// Sum of slots `[0, i)` (so `prefix(0) == 0` and `prefix(len())`
    /// is the total).
    pub fn prefix(&self, i: usize) -> i64 {
        debug_assert!(i <= self.len());
        let mut acc = 0;
        let mut k = i;
        while k > 0 {
            acc += self.tree[k];
            k -= k & k.wrapping_neg();
        }
        acc
    }
}

/// Static piecewise-constant cumulative cost: for a constant platform
/// power `p`, [`PrefixCost::cum`] returns `Σ_{t<x} max(p − G(t), 0)` in
/// `O(log J)`.
///
/// The uniprocessor DPs build two of these (active power, idle power)
/// and answer every `Opt(i, t)` transition from them — no per-candidate
/// re-pricing of the schedule.
#[derive(Debug, Clone)]
pub struct PrefixCost {
    boundaries: Vec<Time>,
    /// Per-unit-time cost within each interval.
    rate: Vec<u64>,
    /// Cumulative cost at each boundary.
    prefix: Vec<u64>,
}

impl PrefixCost {
    /// Precomputes the prefix sums for platform power `p` over the
    /// profile's intervals.
    pub fn new(profile: &PowerProfile, p: u64) -> Self {
        let boundaries = profile.boundaries().to_vec();
        let mut rate = Vec::with_capacity(profile.interval_count());
        let mut prefix = Vec::with_capacity(boundaries.len());
        prefix.push(0);
        for j in 0..profile.interval_count() {
            let r = p.saturating_sub(profile.budget(j));
            let (b, e) = profile.interval_span(j);
            rate.push(r);
            prefix.push(prefix[j] + r * (e - b));
        }
        PrefixCost {
            boundaries,
            rate,
            prefix,
        }
    }

    /// `Σ_{t < x} max(p − G(t), 0)` for `x ≤ T`.
    pub fn cum(&self, x: Time) -> u64 {
        debug_assert!(self.boundaries.last().is_some_and(|&b| x <= b));
        let j = match self.boundaries.binary_search(&x) {
            Ok(j) => return self.prefix[j.min(self.prefix.len() - 1)],
            Err(j) => j - 1,
        };
        self.prefix[j] + self.rate[j] * (x - self.boundaries[j])
    }

    /// Cost of the window `[a, b)`.
    pub fn window(&self, a: Time, b: Time) -> u64 {
        self.cum(b) - self.cum(a)
    }
}

/// Difference-array [`CostEngine`] backed by a [`Fenwick`] tree.
///
/// The working power of a schedule is a step function; this engine
/// stores its *point deltas* (`+w` at each task start, `−w` at each
/// end) in a Fenwick tree indexed by time unit, plus a sorted map of
/// the currently nonzero deltas for piece iteration:
///
/// * build: `O(N log T + J)`,
/// * [`CostEngine::total_cost`]: `O((N + J) log T)`,
/// * [`CostEngine::place_delta`] / [`CostEngine::apply_place`]:
///   `O(log T + k)` where `k` counts the task breakpoints and profile
///   boundaries inside the placed window.
///
/// Memory is `O(T)` like the dense oracle, but — unlike the oracle —
/// update cost scales with the *structure* inside the touched window,
/// not its length, which is what the exact solvers' long-task windows
/// need. The interval-sparse engine stays the production default; this
/// backend exists for the solver inner loops and as a third
/// differential-testing implementation.
#[derive(Debug, Clone)]
pub struct FenwickEngine {
    /// Point deltas of the working-power step function; the level over
    /// `[t, t+1)` is `diff.prefix(t + 1)`.
    diff: Fenwick,
    /// Currently nonzero deltas, sorted by time (piece iteration).
    breaks: BTreeMap<Time, i64>,
    /// Profile boundaries `0 = b_0 < … < b_J = T`.
    boundaries: Vec<Time>,
    /// Headroom `d_j = G_j − Σ P_idle` per interval (may be negative).
    headroom: Vec<i64>,
    horizon: Time,
}

impl FenwickEngine {
    /// Builds the engine for `sched` over the profile's horizon. The
    /// schedule must respect the deadline.
    pub fn new(inst: &Instance, sched: &Schedule, profile: &PowerProfile) -> Self {
        let horizon = profile.deadline();
        let idle = inst.total_idle_power() as i64;
        let mut engine = FenwickEngine {
            diff: Fenwick::new(horizon as usize + 1),
            breaks: BTreeMap::new(),
            boundaries: profile.boundaries().to_vec(),
            headroom: (0..profile.interval_count())
                .map(|j| profile.budget(j) as i64 - idle)
                .collect(),
            horizon,
        };
        for v in 0..inst.node_count() as NodeId {
            let w = inst.work_power(v) as i64;
            let s = sched.start(v);
            let e = sched.finish(v, inst);
            assert!(e <= horizon, "schedule exceeds profile horizon");
            if w != 0 && e > s {
                engine.add_break(s, w);
                engine.add_break(e, -w);
            }
        }
        engine
    }

    /// Number of nonzero point deltas currently stored (diagnostics).
    pub fn breakpoint_count(&self) -> usize {
        self.breaks.len()
    }

    /// Working power over `[t, t+1)`.
    fn level_at(&self, t: Time) -> i64 {
        self.diff.prefix(t as usize + 1)
    }

    /// Index of the profile interval containing `t < T`.
    fn interval_index(&self, t: Time) -> usize {
        debug_assert!(t < self.horizon);
        self.boundaries.partition_point(|&b| b <= t) - 1
    }

    /// Records a point delta at `t` in both structures.
    fn add_break(&mut self, t: Time, delta: i64) {
        if delta == 0 {
            return;
        }
        self.diff.add(t as usize, delta);
        let slot = self.breaks.entry(t).or_insert(0);
        *slot += delta;
        if *slot == 0 {
            self.breaks.remove(&t);
        }
    }

    /// Sweeps the pieces of `[a, b)` cut by breakpoints and profile
    /// boundaries, accumulating the cost change of adding `delta`.
    fn range_cost_delta(&self, a: Time, b: Time, delta: i64) -> i64 {
        debug_assert!(a < b && b <= self.horizon);
        let mut acc = 0i64;
        let mut t = a;
        let mut level = self.level_at(a);
        let mut segs = self.breaks.range((Excluded(a), Excluded(b))).peekable();
        let mut j = self.interval_index(a);
        while t < b {
            let next_seg = segs.peek().map_or(Time::MAX, |(&k, _)| k);
            let next_bound = self.boundaries[j + 1];
            let next = next_seg.min(next_bound).min(b);
            let d = self.headroom[j];
            let before = (level - d).max(0);
            let after = (level + delta - d).max(0);
            acc += (after - before) * (next - t) as i64;
            if next == next_seg {
                // cawo-lint: allow(panic-path) — `next == next_seg`
                // implies the peeked entry exists.
                level += *segs.next().expect("peeked").1;
            }
            if next == next_bound && j + 1 < self.headroom.len() {
                j += 1;
            }
            t = next;
        }
        acc
    }
}

impl CostEngine for FenwickEngine {
    const NAME: &'static str = "fenwick";

    fn build(inst: &Instance, sched: &Schedule, profile: &PowerProfile) -> Self {
        FenwickEngine::new(inst, sched, profile)
    }

    fn total_cost(&self) -> Cost {
        let mut cost: u128 = 0;
        let mut t: Time = 0;
        let mut level = 0i64;
        let mut segs = self.breaks.range(..).peekable();
        // Deltas at t = 0 take effect before the first piece.
        while let Some(&(&k, &d)) = segs.peek() {
            if k > 0 {
                break;
            }
            level += d;
            segs.next();
        }
        let mut j = 0usize;
        while t < self.horizon {
            let next_seg = segs.peek().map_or(Time::MAX, |(&k, _)| k);
            let next_bound = self.boundaries[j + 1];
            let next = next_seg.min(next_bound).min(self.horizon);
            let over = (level - self.headroom[j]).max(0) as u128;
            cost += over * (next - t) as u128;
            if next == next_seg {
                // cawo-lint: allow(panic-path) — `next == next_seg`
                // implies the peeked entry exists.
                level += *segs.next().expect("peeked").1;
            }
            if next == next_bound && j + 1 < self.headroom.len() {
                j += 1;
            }
            t = next;
        }
        crate::cost::narrow_cost(cost)
    }

    fn place_delta(&self, start: Time, len: Time, delta: i64) -> i64 {
        cawo_obs::inc(cawo_obs::Ctr::EnginePriceFenwick);
        if len == 0 || delta == 0 {
            return 0;
        }
        assert!(
            start + len <= self.horizon,
            "placement exceeds profile horizon"
        );
        self.range_cost_delta(start, start + len, delta)
    }

    fn apply_place(&mut self, start: Time, len: Time, delta: i64) {
        if len == 0 || delta == 0 {
            return;
        }
        assert!(
            start + len <= self.horizon,
            "placement exceeds profile horizon"
        );
        self.add_break(start, delta);
        self.add_break(start + len, -delta);
    }

    fn horizon(&self) -> Time {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::carbon_cost;
    use crate::enhanced::UnitInfo;
    use cawo_graph::dag::DagBuilder;

    fn two_task_instance() -> Instance {
        let dag = DagBuilder::new(2).build().unwrap();
        Instance::from_raw(
            dag,
            vec![4, 2],
            vec![0, 1],
            vec![
                UnitInfo {
                    p_idle: 3,
                    p_work: 10,
                    is_link: false,
                },
                UnitInfo {
                    p_idle: 2,
                    p_work: 5,
                    is_link: false,
                },
            ],
            0,
        )
    }

    #[test]
    fn fenwick_prefix_sums() {
        let mut f = Fenwick::new(10);
        assert_eq!(f.len(), 10);
        assert!(!f.is_empty());
        f.add(0, 5);
        f.add(3, -2);
        f.add(9, 7);
        assert_eq!(f.prefix(0), 0);
        assert_eq!(f.prefix(1), 5);
        assert_eq!(f.prefix(3), 5);
        assert_eq!(f.prefix(4), 3);
        assert_eq!(f.prefix(10), 10);
        f.add(3, 2); // cancel
        assert_eq!(f.prefix(4), 5);
    }

    #[test]
    fn prefix_cost_queries() {
        let profile = PowerProfile::from_parts(vec![0, 10, 20], vec![3, 8]);
        let c = PrefixCost::new(&profile, 5);
        // Rates: max(5-3,0)=2 then max(5-8,0)=0.
        assert_eq!(c.cum(0), 0);
        assert_eq!(c.cum(4), 8);
        assert_eq!(c.cum(10), 20);
        assert_eq!(c.cum(15), 20);
        assert_eq!(c.cum(20), 20);
        assert_eq!(c.window(5, 12), 10);
    }

    #[test]
    fn total_matches_sweep() {
        let inst = two_task_instance();
        let profile = PowerProfile::from_parts(vec![0, 4, 8], vec![10, 6]);
        let s = Schedule::new(vec![0, 4]);
        let engine = FenwickEngine::new(&inst, &s, &profile);
        assert_eq!(engine.total_cost(), carbon_cost(&inst, &s, &profile));
        assert_eq!(engine.horizon(), 8);
        assert_eq!(engine.breakpoint_count(), 3, "shared breakpoint at 4");
    }

    #[test]
    fn place_then_total_is_consistent() {
        let inst = two_task_instance();
        let profile = PowerProfile::from_parts(vec![0, 4, 8], vec![12, 18]);
        let s = Schedule::new(vec![0, 0]);
        let mut engine = FenwickEngine::new(&inst, &s, &profile);
        let before = engine.total_cost() as i64;
        // Add a phantom load of 7 over [2, 6).
        let delta = engine.place_delta(2, 4, 7);
        engine.apply_place(2, 4, 7);
        assert_eq!(engine.total_cost() as i64, before + delta);
        // Remove it again.
        let back = engine.place_delta(2, 4, -7);
        engine.apply_place(2, 4, -7);
        assert_eq!(delta + back, 0);
        assert_eq!(engine.total_cost() as i64, before);
    }

    #[test]
    fn shift_delta_matches_recost() {
        let inst = two_task_instance();
        let profile = PowerProfile::from_parts(vec![0, 4, 8], vec![12, 18]);
        let s = Schedule::new(vec![0, 0]);
        let engine = FenwickEngine::new(&inst, &s, &profile);
        for ns in 0..=4 as Time {
            let mut s2 = s.clone();
            s2.set_start(0, ns);
            let expected =
                carbon_cost(&inst, &s2, &profile) as i64 - carbon_cost(&inst, &s, &profile) as i64;
            assert_eq!(engine.shift_delta(0, 4, 10, ns), expected, "ns={ns}");
        }
    }

    #[test]
    fn budget_below_idle_is_charged() {
        let inst = two_task_instance(); // idle 5
        let profile = PowerProfile::uniform(10, 3);
        let s = Schedule::new(vec![0, 4]);
        let engine = FenwickEngine::new(&inst, &s, &profile);
        assert_eq!(engine.total_cost(), carbon_cost(&inst, &s, &profile));
    }

    #[test]
    #[should_panic(expected = "exceeds profile horizon")]
    fn placement_past_horizon_panics() {
        let inst = two_task_instance();
        let profile = PowerProfile::uniform(10, 5);
        let engine = FenwickEngine::new(&inst, &Schedule::new(vec![0, 0]), &profile);
        let _ = engine.place_delta(8, 4, 10); // window [8, 12) > T=10
    }
}

//! Incremental trace-tail re-answer.
//!
//! The serving scenario behind the `cawod` north star: a workflow was
//! evaluated against a carbon forecast, the forecast's *tail* is then
//! revised (rolling forecasts only ever change after "now"), and the
//! cost of the cached schedule under the new profile is wanted — ideally
//! without re-pricing the whole horizon.
//!
//! [`profile_divergence`] finds the earliest time `t` where two budget
//! functions differ; [`reanswer_cost`] then patches the cached cost with
//! `old_cost − old_suffix(t) + new_suffix(t)` using
//! [`carbon_cost_from`]. The answer is bit-identical to a cold
//! [`carbon_cost`](crate::carbon_cost) of the same schedule under the
//! new profile — that is
//! the contract the warm-path test suite pins across S1–S4 and measured
//! traces.
//!
//! When the new profile *shortens* the deadline below the cached
//! schedule's makespan the cached answer cannot be served;
//! [`repair_for_deadline`] attempts a cheap local repair (ALAP clamp +
//! forward legalisation, `O(V + E)`) so callers can still warm-start a
//! re-solve from a feasible incumbent instead of falling back to a cold
//! heuristic.

use cawo_platform::{PowerProfile, Time};

use crate::cost::{carbon_cost_from, Cost};
use crate::enhanced::Instance;
use crate::schedule::Schedule;

/// Earliest time at which two piecewise-constant budget functions
/// differ, or `None` if they are identical as functions of time
/// (interval *structure* may differ — only values matter).
///
/// Profiles with different deadlines diverge at the shorter deadline at
/// the latest: past its deadline a profile's budget is 0 by convention,
/// and the horizon itself constrains the schedule.
pub fn profile_divergence(old: &PowerProfile, new: &PowerProfile) -> Option<Time> {
    let ob = old.boundaries();
    let nb = new.boundaries();
    let obud = old.budgets();
    let nbud = new.budgets();
    let horizon = old.deadline().min(new.deadline());
    let (mut i, mut j) = (0usize, 0usize);
    let mut t: Time = 0;
    while t < horizon {
        if obud[i] != nbud[j] {
            return Some(t);
        }
        let next = ob[i + 1].min(nb[j + 1]).min(horizon);
        if ob[i + 1] == next {
            i += 1;
        }
        if nb[j + 1] == next {
            j += 1;
        }
        t = next;
    }
    if old.deadline() != new.deadline() {
        return Some(horizon);
    }
    None
}

/// Re-answers the cost of a cached (schedule, cost) pair under a new
/// profile by re-pricing only the changed suffix.
///
/// `old_cost` must be `carbon_cost(inst, sched, old)`. Returns `None`
/// when the schedule no longer fits the new profile's horizon (the
/// caller should repair or re-solve); otherwise the returned cost is
/// bit-identical to `carbon_cost(inst, sched, new)`.
pub fn reanswer_cost(
    inst: &Instance,
    sched: &Schedule,
    old: &PowerProfile,
    old_cost: Cost,
    new: &PowerProfile,
) -> Option<Cost> {
    if sched.makespan(inst) > new.deadline() {
        return None;
    }
    match profile_divergence(old, new) {
        None => Some(old_cost),
        Some(t) => {
            let old_tail = carbon_cost_from(inst, sched, old, t);
            let new_tail = carbon_cost_from(inst, sched, new, t);
            Some(
                old_cost
                    .checked_sub(old_tail)
                    // cawo-lint: allow(panic-path) — the split identity
                    // `total = head + tail` (see carbon_cost_from docs)
                    // bounds the tail by the total; property-tested in
                    // this module.
                    .expect("suffix cost cannot exceed total cost")
                    + new_tail,
            )
        }
    }
}

/// Local repair of a schedule for a tighter deadline: clamp every start
/// to its ALAP bound under the new deadline (reverse topological pass),
/// then legalise precedence forward. Starts only ever move *earlier*,
/// so a feasible result stays within the original green-aware placement
/// where the deadline permits. Returns `None` when no precedence-valid
/// schedule fits the deadline (i.e. the critical path is too long).
pub fn repair_for_deadline(inst: &Instance, sched: &Schedule, deadline: Time) -> Option<Schedule> {
    let n = inst.node_count();
    let dag = inst.dag();
    let order = inst.topo_order();

    // Reverse pass: latest feasible start per node.
    let mut latest = vec![0 as Time; n];
    for &v in order.iter().rev() {
        let mut finish_by = deadline;
        for &s in dag.successors(v) {
            finish_by = finish_by.min(latest[s as usize]);
        }
        let exec = inst.exec(v);
        if finish_by < exec {
            return None; // critical path exceeds the deadline
        }
        latest[v as usize] = finish_by - exec;
    }

    // Forward pass: clamp to ALAP, then push below predecessor finishes.
    let mut out = sched.clone();
    for &v in order {
        let mut s = out.start(v).min(latest[v as usize]);
        for &p in dag.predecessors(v) {
            s = s.max(out.finish(p, inst));
        }
        if s > latest[v as usize] {
            return None;
        }
        out.set_start(v, s);
    }
    debug_assert!(out.validate(inst, deadline).is_ok());
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::carbon_cost;
    use crate::enhanced::UnitInfo;
    use cawo_graph::dag::DagBuilder;

    fn chain_instance() -> Instance {
        // 0 → 1 → 2 on one unit.
        let mut b = DagBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let dag = b.build().unwrap();
        let unit = UnitInfo {
            p_idle: 1,
            p_work: 7,
            is_link: false,
        };
        Instance::from_raw(dag, vec![3, 2, 4], vec![0, 0, 0], vec![unit], 0)
    }

    #[test]
    fn divergence_ignores_interval_structure() {
        let a = PowerProfile::from_parts(vec![0, 10], vec![5]);
        let b = PowerProfile::from_parts(vec![0, 4, 10], vec![5, 5]);
        assert_eq!(profile_divergence(&a, &b), None);
    }

    #[test]
    fn divergence_finds_earliest_change() {
        let a = PowerProfile::from_parts(vec![0, 4, 8, 12], vec![5, 6, 7]);
        let b = PowerProfile::from_parts(vec![0, 4, 8, 12], vec![5, 6, 9]);
        assert_eq!(profile_divergence(&a, &b), Some(8));
        let c = PowerProfile::from_parts(vec![0, 4, 8, 12], vec![5, 2, 7]);
        assert_eq!(profile_divergence(&a, &c), Some(4));
        // A mid-interval split with a changed second half diverges at
        // the split point, not the original boundary.
        let d = PowerProfile::from_parts(vec![0, 4, 6, 8, 12], vec![5, 6, 3, 7]);
        assert_eq!(profile_divergence(&a, &d), Some(6));
    }

    #[test]
    fn divergence_on_deadline_only() {
        let a = PowerProfile::from_parts(vec![0, 4, 8], vec![5, 6]);
        let b = PowerProfile::from_parts(vec![0, 4, 8, 12], vec![5, 6, 6]);
        assert_eq!(profile_divergence(&a, &b), Some(8));
        assert_eq!(profile_divergence(&b, &a), Some(8));
    }

    #[test]
    fn reanswer_matches_cold_eval() {
        let inst = chain_instance();
        let old = PowerProfile::from_parts(vec![0, 5, 10, 15], vec![9, 4, 8]);
        let new = PowerProfile::from_parts(vec![0, 5, 10, 15], vec![9, 4, 2]);
        let sched = Schedule::new(vec![0, 3, 5]);
        let old_cost = carbon_cost(&inst, &sched, &old);
        let got = reanswer_cost(&inst, &sched, &old, old_cost, &new).unwrap();
        assert_eq!(got, carbon_cost(&inst, &sched, &new));
    }

    #[test]
    fn reanswer_rejects_too_tight_deadline() {
        let inst = chain_instance();
        let old = PowerProfile::from_parts(vec![0, 15], vec![9]);
        let new = PowerProfile::from_parts(vec![0, 8], vec![9]);
        let sched = Schedule::new(vec![0, 3, 5]); // makespan 9 > 8
        let old_cost = carbon_cost(&inst, &sched, &old);
        assert_eq!(reanswer_cost(&inst, &sched, &old, old_cost, &new), None);
    }

    #[test]
    fn repair_clamps_to_tighter_deadline() {
        let inst = chain_instance();
        // Schedule with slack at the end: starts 0, 4, 8, makespan 12.
        let sched = Schedule::new(vec![0, 4, 8]);
        let repaired = repair_for_deadline(&inst, &sched, 10).unwrap();
        assert!(repaired.validate(&inst, 10).is_ok());
        // Starts only move earlier.
        for v in 0..3 {
            assert!(repaired.start(v) <= sched.start(v));
        }
        // Critical path is 9; deadline 8 is infeasible.
        assert!(repair_for_deadline(&inst, &sched, 8).is_none());
        assert!(repair_for_deadline(&inst, &sched, 9).is_some());
    }
}

//! The interval-sparse incremental cost engine.

use std::collections::BTreeMap;
use std::ops::Bound::{Excluded, Included, Unbounded};

use cawo_graph::NodeId;
use cawo_platform::{PowerProfile, Time};

use crate::cost::Cost;
use crate::enhanced::Instance;
use crate::schedule::Schedule;

use super::CostEngine;

/// Carbon-cost engine whose state is keyed by breakpoints, not time
/// units.
///
/// The working power of a schedule is piecewise constant with at most
/// `2N` breakpoints (task starts and ends), and the green budget is
/// piecewise constant on the `J` profile intervals. This engine stores
/// the working power as a sorted map from segment start to power level,
/// so every operation costs what the *structure* of the schedule
/// demands rather than what the horizon length does:
///
/// * build: `O(N log N + J)`,
/// * [`CostEngine::total_cost`]: `O(N + J)`,
/// * [`CostEngine::shift_delta`] / [`CostEngine::apply_shift`]:
///   `O(log N + k)` where `k` is the number of breakpoints and interval
///   boundaries inside the move's symmetric difference.
///
/// This is the incremental counterpart of Appendix A.1's polynomial
/// sweep and the engine that keeps 100k-unit horizons and
/// thousand-interval carbon traces affordable — the dense oracle pays
/// for every time unit in between.
#[derive(Debug, Clone)]
pub struct IntervalEngine {
    /// Segment start → working power over `[key, next key)`. Always
    /// contains key 0; adjacent segments always have distinct levels
    /// (edges are re-coalesced after every update).
    work: BTreeMap<Time, i64>,
    /// Profile boundaries `0 = b_0 < … < b_J = T`.
    boundaries: Vec<Time>,
    /// Headroom `d_j = G_j − Σ P_idle` per interval (may be negative).
    headroom: Vec<i64>,
    horizon: Time,
}

impl IntervalEngine {
    /// Builds the engine for `sched` over the profile's horizon. The
    /// schedule must respect the deadline.
    pub fn new(inst: &Instance, sched: &Schedule, profile: &PowerProfile) -> Self {
        let horizon = profile.deadline();
        let idle = inst.total_idle_power() as i64;
        let mut work = BTreeMap::new();
        work.insert(0, 0i64);
        let mut engine = IntervalEngine {
            work,
            boundaries: profile.boundaries().to_vec(),
            headroom: (0..profile.interval_count())
                .map(|j| profile.budget(j) as i64 - idle)
                .collect(),
            horizon,
        };
        for v in 0..inst.node_count() as NodeId {
            let w = inst.work_power(v) as i64;
            let s = sched.start(v);
            let e = sched.finish(v, inst);
            debug_assert!(e <= horizon, "schedule exceeds profile horizon");
            engine.add_range(s, e, w);
        }
        engine
    }

    /// Number of working-power segments currently stored (diagnostics).
    pub fn segment_count(&self) -> usize {
        self.work.len()
    }

    /// Working power at time `t`.
    fn level_at(&self, t: Time) -> i64 {
        *self
            .work
            .range((Unbounded, Included(t)))
            .next_back()
            // cawo-lint: allow(panic-path) — the segment map is seeded
            // with key 0 at construction and key 0 is never removed.
            .expect("key 0 always present")
            .1
    }

    /// Index of the profile interval containing `t < T`.
    fn interval_index(&self, t: Time) -> usize {
        debug_assert!(t < self.horizon);
        self.boundaries.partition_point(|&b| b <= t) - 1
    }

    /// Inserts a breakpoint at `t` (no-op if present), carrying over the
    /// level of the containing segment.
    fn ensure_breakpoint(&mut self, t: Time) {
        if !self.work.contains_key(&t) {
            let level = self.level_at(t);
            self.work.insert(t, level);
        }
    }

    /// Removes the breakpoint at `t` if it no longer changes the level.
    fn coalesce(&mut self, t: Time) {
        if t == 0 {
            return;
        }
        if let Some(&level) = self.work.get(&t) {
            let prev = *self
                .work
                .range((Unbounded, Excluded(t)))
                .next_back()
                // cawo-lint: allow(panic-path) — the segment map is seeded
                // with key 0 at construction and key 0 is never removed.
                .expect("key 0 always present")
                .1;
            if prev == level {
                self.work.remove(&t);
            }
        }
    }

    /// Adds `delta` to the working power over `[a, b)`.
    fn add_range(&mut self, a: Time, b: Time, delta: i64) {
        if a >= b || delta == 0 {
            return;
        }
        self.ensure_breakpoint(a);
        self.ensure_breakpoint(b);
        for (_, level) in self.work.range_mut(a..b) {
            *level += delta;
        }
        // Only the edges can have become redundant: interior neighbours
        // moved by the same delta, so their (in)equality is unchanged.
        self.coalesce(b);
        self.coalesce(a);
    }

    /// Cost change of adding `delta` working power over `[a, b)`:
    /// sweeps the atomic pieces cut by segment breakpoints and interval
    /// boundaries inside the range.
    fn range_cost_delta(&self, a: Time, b: Time, delta: i64) -> i64 {
        if a >= b || delta == 0 {
            return 0;
        }
        debug_assert!(b <= self.horizon);
        let mut acc = 0i64;
        let mut t = a;
        let mut level = self.level_at(a);
        let mut segs = self.work.range((Excluded(a), Excluded(b))).peekable();
        let mut j = self.interval_index(a);
        while t < b {
            let next_seg = segs.peek().map_or(Time::MAX, |(&k, _)| k);
            let next_bound = self.boundaries[j + 1];
            let next = next_seg.min(next_bound).min(b);
            let d = self.headroom[j];
            let before = (level - d).max(0);
            let after = (level + delta - d).max(0);
            acc += (after - before) * (next - t) as i64;
            if next == next_seg {
                // cawo-lint: allow(panic-path) — `next == next_seg`
                // implies the peeked entry exists.
                level = *segs.next().expect("peeked").1;
            }
            if next == next_bound && j + 1 < self.headroom.len() {
                j += 1;
            }
            t = next;
        }
        acc
    }
}

impl CostEngine for IntervalEngine {
    const NAME: &'static str = "interval";

    fn build(inst: &Instance, sched: &Schedule, profile: &PowerProfile) -> Self {
        IntervalEngine::new(inst, sched, profile)
    }

    fn total_cost(&self) -> Cost {
        let mut cost: u128 = 0;
        let mut t: Time = 0;
        // cawo-lint: allow(panic-path) — the segment map is seeded with
        // key 0 at construction and key 0 is never removed.
        let mut level = *self.work.get(&0).expect("key 0 always present");
        let mut segs = self.work.range((Excluded(0), Unbounded)).peekable();
        let mut j = 0usize;
        while t < self.horizon {
            let next_seg = segs.peek().map_or(Time::MAX, |(&k, _)| k);
            let next_bound = self.boundaries[j + 1];
            let next = next_seg.min(next_bound).min(self.horizon);
            let over = (level - self.headroom[j]).max(0) as u128;
            cost += over * (next - t) as u128;
            if next == next_seg {
                // cawo-lint: allow(panic-path) — `next == next_seg`
                // implies the peeked entry exists.
                level = *segs.next().expect("peeked").1;
            }
            if next == next_bound && j + 1 < self.headroom.len() {
                j += 1;
            }
            t = next;
        }
        crate::cost::narrow_cost(cost)
    }

    fn place_delta(&self, start: Time, len: Time, delta: i64) -> i64 {
        cawo_obs::inc(cawo_obs::Ctr::EnginePriceInterval);
        if len == 0 || delta == 0 {
            return 0;
        }
        assert!(
            start + len <= self.horizon,
            "placement exceeds profile horizon"
        );
        self.range_cost_delta(start, start + len, delta)
    }

    fn apply_place(&mut self, start: Time, len: Time, delta: i64) {
        if len == 0 || delta == 0 {
            return;
        }
        assert!(
            start + len <= self.horizon,
            "placement exceeds profile horizon"
        );
        self.add_range(start, start + len, delta);
    }

    fn horizon(&self) -> Time {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::carbon_cost;
    use crate::enhanced::UnitInfo;
    use cawo_graph::dag::DagBuilder;

    fn two_task_instance() -> Instance {
        let dag = DagBuilder::new(2).build().unwrap();
        Instance::from_raw(
            dag,
            vec![4, 2],
            vec![0, 1],
            vec![
                UnitInfo {
                    p_idle: 3,
                    p_work: 10,
                    is_link: false,
                },
                UnitInfo {
                    p_idle: 2,
                    p_work: 5,
                    is_link: false,
                },
            ],
            0,
        )
    }

    /// The coalescing invariant: key 0 present, no two adjacent segments
    /// with equal levels.
    fn assert_canonical(e: &IntervalEngine) {
        assert!(e.work.contains_key(&0));
        let levels: Vec<i64> = e.work.values().copied().collect();
        for w in levels.windows(2) {
            assert_ne!(w[0], w[1], "uncoalesced segments: {:?}", e.work);
        }
    }

    #[test]
    fn total_matches_sweep() {
        let inst = two_task_instance();
        let profile = PowerProfile::from_parts(vec![0, 4, 8], vec![10, 6]);
        let s = Schedule::new(vec![0, 4]);
        let engine = IntervalEngine::new(&inst, &s, &profile);
        assert_eq!(engine.total_cost(), carbon_cost(&inst, &s, &profile));
        assert_eq!(engine.horizon(), 8);
        assert_canonical(&engine);
    }

    #[test]
    fn budget_below_idle_is_charged() {
        // Negative headroom: G < Σ P_idle must still be costed.
        let inst = two_task_instance(); // idle 5
        let profile = PowerProfile::uniform(10, 3);
        let s = Schedule::new(vec![0, 4]);
        let engine = IntervalEngine::new(&inst, &s, &profile);
        assert_eq!(engine.total_cost(), carbon_cost(&inst, &s, &profile));
    }

    #[test]
    fn shift_delta_matches_recost() {
        let inst = two_task_instance();
        let profile = PowerProfile::from_parts(vec![0, 4, 8], vec![12, 18]);
        let s = Schedule::new(vec![0, 0]);
        let engine = IntervalEngine::new(&inst, &s, &profile);
        for ns in 0..=4 as Time {
            let mut s2 = s.clone();
            s2.set_start(0, ns);
            let expected =
                carbon_cost(&inst, &s2, &profile) as i64 - carbon_cost(&inst, &s, &profile) as i64;
            assert_eq!(engine.shift_delta(0, 4, 10, ns), expected, "ns={ns}");
        }
    }

    #[test]
    fn apply_then_total_is_consistent() {
        let inst = two_task_instance();
        let profile = PowerProfile::from_parts(vec![0, 4, 8], vec![12, 18]);
        let mut s = Schedule::new(vec![0, 0]);
        let mut engine = IntervalEngine::new(&inst, &s, &profile);
        let before = engine.total_cost() as i64;
        let delta = engine.shift_delta(0, 4, 10, 3);
        engine.apply_shift(0, 4, 10, 3);
        s.set_start(0, 3);
        assert_eq!(engine.total_cost() as i64, before + delta);
        assert_eq!(engine.total_cost(), carbon_cost(&inst, &s, &profile));
        assert_canonical(&engine);
    }

    #[test]
    fn long_random_walk_stays_canonical_and_exact() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        // 6 independent tasks, varied powers, 3-interval profile.
        let n = 6;
        let dag = DagBuilder::new(n).build().unwrap();
        let units: Vec<UnitInfo> = (0..n)
            .map(|_| UnitInfo {
                p_idle: rng.gen_range(0..4),
                p_work: rng.gen_range(1..15),
                is_link: false,
            })
            .collect();
        let exec: Vec<Time> = (0..n).map(|_| rng.gen_range(1..9)).collect();
        let inst = Instance::from_raw(dag, exec.clone(), (0..n as u32).collect(), units, 0);
        let horizon: Time = 40;
        let profile = PowerProfile::from_parts(vec![0, 11, 27, horizon], vec![6, 19, 2]);
        let mut sched = Schedule::new(vec![0; n]);
        let mut engine = IntervalEngine::new(&inst, &sched, &profile);
        for step in 0..300 {
            let v = rng.gen_range(0..n as NodeId);
            let len = inst.exec(v);
            let w = inst.work_power(v) as i64;
            let s = sched.start(v);
            let ns = rng.gen_range(0..=horizon - len);
            let delta = engine.shift_delta(s, len, w, ns);
            let before = carbon_cost(&inst, &sched, &profile) as i64;
            engine.apply_shift(s, len, w, ns);
            sched.set_start(v, ns);
            let after = carbon_cost(&inst, &sched, &profile) as i64;
            assert_eq!(delta, after - before, "step {step}");
            assert_eq!(engine.total_cost() as i64, after, "step {step}");
            assert_canonical(&engine);
            // Sparse invariant: never more segments than 2 per task + 1.
            assert!(engine.segment_count() <= 2 * n + 1);
        }
    }

    #[test]
    fn segment_count_is_horizon_independent() {
        let inst = two_task_instance();
        for horizon in [100u64, 100_000] {
            let profile = PowerProfile::uniform(horizon, 7);
            let s = Schedule::new(vec![0, 4]);
            let engine = IntervalEngine::new(&inst, &s, &profile);
            assert!(engine.segment_count() <= 5, "horizon {horizon}");
            assert_eq!(engine.total_cost(), carbon_cost(&inst, &s, &profile));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds profile horizon")]
    fn shift_past_horizon_panics() {
        let inst = two_task_instance();
        let profile = PowerProfile::uniform(10, 5);
        let engine = IntervalEngine::new(&inst, &Schedule::new(vec![0, 0]), &profile);
        let _ = engine.shift_delta(0, 4, 10, 8); // window [8, 12) > T=10
    }

    #[test]
    fn zero_power_and_zero_shift_are_free() {
        let inst = two_task_instance();
        let profile = PowerProfile::uniform(10, 0);
        let mut engine = IntervalEngine::new(&inst, &Schedule::new(vec![0, 0]), &profile);
        assert_eq!(engine.shift_delta(0, 4, 0, 6), 0);
        assert_eq!(engine.shift_delta(3, 4, 10, 3), 0);
        let before = engine.total_cost();
        engine.apply_shift(0, 4, 0, 6);
        assert_eq!(engine.total_cost(), before);
    }
}

//! Pluggable carbon-cost engines.
//!
//! Every scheduling heuristic in this crate spends most of its time
//! answering the same two questions: *what does the current schedule
//! cost?* and *what would moving one task cost?* The [`CostEngine`]
//! trait abstracts those queries so algorithms can be written once and
//! run against either backend:
//!
//! * [`DenseGrid`] — the original per-time-unit working-power array.
//!   Pseudo-polynomial (state and build time scale with the horizon
//!   `T`), trivially correct, kept as the test oracle.
//! * [`IntervalEngine`] — interval-sparse state keyed by power-profile
//!   boundaries plus task start/end breakpoints. `total_cost` is
//!   `O(N + J)` and `shift_delta`/`apply_shift` are `O(breakpoints
//!   touched)`, independent of the horizon length — the incremental
//!   counterpart of Appendix A.1's polynomial sweep, and the only
//!   backend that stays affordable on thousand-interval real-world
//!   carbon traces (see `cawo_platform`'s `TraceSource`).
//!
//! Both engines evaluate the same objective as [`crate::carbon_cost`]:
//! the green-budget overshoot `Σ_t max(P_t − G_t, 0)` integrated over
//! `[0, T)`, for schedules that respect the profile horizon.

use cawo_platform::{PowerProfile, Time};

use crate::cost::Cost;
use crate::enhanced::Instance;
use crate::schedule::Schedule;

mod dense;
mod fenwick;
mod interval;
pub mod reanswer;

pub use dense::DenseGrid;
pub use fenwick::{Fenwick, FenwickEngine, PrefixCost};
pub use interval::IntervalEngine;
pub use reanswer::{profile_divergence, reanswer_cost, repair_for_deadline};

/// Incremental evaluator of the carbon cost of one schedule.
///
/// An engine is built from a concrete (instance, schedule, profile)
/// triple and then tracks the schedule through task moves. The contract
/// shared by all implementations:
///
/// * the schedule passed to [`CostEngine::build`] — and every state
///   reachable through [`CostEngine::apply_shift`] /
///   [`CostEngine::apply_place`] — must finish within the profile
///   horizon,
/// * [`CostEngine::total_cost`] equals [`crate::carbon_cost`] of the
///   tracked schedule,
/// * [`CostEngine::place_delta`] returns the exact cost change of
///   adding working power over a window (negative `delta` removes
///   power) without mutating state,
/// * [`CostEngine::shift_delta`] returns the exact cost change of
///   moving one task (negative = improvement) without mutating state,
/// * [`CostEngine::apply_place`] / [`CostEngine::apply_shift`] commit a
///   previously evaluated change.
///
/// Only the *placement* primitives are backend-specific; the shift
/// operations have default implementations over the symmetric
/// difference of the old and new execution windows. Exact solvers
/// (branch-and-bound placement, E-schedule block shifts) drive the
/// placement API directly; the local search uses the shift API.
pub trait CostEngine {
    /// Engine label used by CLIs, reports and benches.
    const NAME: &'static str;

    /// Builds the engine state for `sched` over the profile's horizon.
    fn build(inst: &Instance, sched: &Schedule, profile: &PowerProfile) -> Self
    where
        Self: Sized;

    /// Total carbon cost of the tracked schedule.
    fn total_cost(&self) -> Cost;

    /// Cost change of adding `delta` working power over
    /// `[start, start + len)`. `delta` may be negative (a task being
    /// removed or vacating a window). Does not mutate state.
    fn place_delta(&self, start: Time, len: Time, delta: i64) -> i64;

    /// Applies the change evaluated by [`CostEngine::place_delta`].
    fn apply_place(&mut self, start: Time, len: Time, delta: i64);

    /// Horizon length `T` the engine covers.
    fn horizon(&self) -> Time;

    /// Cost change if a task of working power `w` and length `len`
    /// currently executing in `[start, start + len)` moved to
    /// `[new_start, new_start + len)`. Negative = improvement.
    fn shift_delta(&self, start: Time, len: Time, w: i64, new_start: Time) -> i64 {
        if start == new_start || w == 0 || len == 0 {
            return 0;
        }
        // Hard assert (not debug): a window past the horizon has no
        // defined budget and every backend would misbehave differently;
        // fail loudly and uniformly instead.
        assert!(
            new_start + len <= self.horizon(),
            "shift target exceeds profile horizon"
        );
        let (s0, e0) = (start, start + len);
        let (s1, e1) = (new_start, new_start + len);
        let mut delta = 0i64;
        // Vacated by the move: in [s0, e0) but not [s1, e1); then the
        // newly occupied part. The runs are disjoint, so the two
        // placement deltas are independent and sum exactly.
        for (a, b) in difference_runs(s0, e0, s1, e1) {
            if a < b {
                delta += self.place_delta(a, b - a, -w);
            }
        }
        for (a, b) in difference_runs(s1, e1, s0, e0) {
            if a < b {
                delta += self.place_delta(a, b - a, w);
            }
        }
        delta
    }

    /// Applies the move evaluated by [`CostEngine::shift_delta`].
    fn apply_shift(&mut self, start: Time, len: Time, w: i64, new_start: Time) {
        if start == new_start || w == 0 || len == 0 {
            return;
        }
        assert!(
            new_start + len <= self.horizon(),
            "shift target exceeds profile horizon"
        );
        for (a, b) in difference_runs(start, start + len, new_start, new_start + len) {
            if a < b {
                self.apply_place(a, b - a, -w);
            }
        }
        for (a, b) in difference_runs(new_start, new_start + len, start, start + len) {
            if a < b {
                self.apply_place(a, b - a, w);
            }
        }
    }
}

/// Selects a [`CostEngine`] implementation at run time (CLI flag,
/// [`crate::variant::RunParams`], experiment configs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// Per-time-unit [`DenseGrid`] — the pseudo-polynomial oracle.
    Dense,
    /// Interval-sparse [`IntervalEngine`] — the production default.
    #[default]
    Interval,
    /// Difference-array [`FenwickEngine`] — prefix-sum levels in a
    /// binary indexed tree; the exact solvers' alternative backend.
    Fenwick,
}

impl EngineKind {
    /// All engines, oracle first.
    pub const ALL: [EngineKind; 3] = [EngineKind::Dense, EngineKind::Interval, EngineKind::Fenwick];

    /// Stable label (`"dense"` / `"interval"` / `"fenwick"`).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Dense => DenseGrid::NAME,
            EngineKind::Interval => IntervalEngine::NAME,
            EngineKind::Fenwick => FenwickEngine::NAME,
        }
    }

    /// Parses a label (inverse of [`EngineKind::name`], ASCII
    /// case-insensitive).
    pub fn parse(s: &str) -> Option<EngineKind> {
        EngineKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The (at most two) maximal runs of `[a, b) \ [c, d)`, possibly empty
/// (`start >= end`). Both engines evaluate moves over the symmetric
/// difference of the old and new execution windows, expressed through
/// this helper.
pub(crate) fn difference_runs(a: Time, b: Time, c: Time, d: Time) -> [(Time, Time); 2] {
    [(a, b.min(c.max(a))), (a.max(d.min(b)), b)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(a: Time, b: Time, c: Time, d: Time) -> Vec<Time> {
        difference_runs(a, b, c, d)
            .into_iter()
            .flat_map(|(s, e)| s..e)
            .collect()
    }

    #[test]
    fn difference_run_cases() {
        // Disjoint.
        assert_eq!(collect(0, 3, 5, 8), vec![0, 1, 2]);
        // Overlap right.
        assert_eq!(collect(0, 5, 3, 8), vec![0, 1, 2]);
        // Overlap left.
        assert_eq!(collect(3, 8, 0, 5), vec![5, 6, 7]);
        // Contained: nothing left.
        assert_eq!(collect(2, 4, 0, 8), Vec::<Time>::new());
        // Contains: both sides (shift by more than len would hit this).
        assert_eq!(collect(0, 8, 2, 4), vec![0, 1, 4, 5, 6, 7]);
        // Identical.
        assert_eq!(collect(1, 4, 1, 4), Vec::<Time>::new());
    }

    #[test]
    fn engine_kind_labels_roundtrip() {
        for k in EngineKind::ALL {
            assert_eq!(EngineKind::parse(k.name()), Some(k));
            assert_eq!(EngineKind::parse(&k.name().to_uppercase()), Some(k));
        }
        assert_eq!(EngineKind::parse("sparse"), None);
        assert_eq!(EngineKind::default(), EngineKind::Interval);
        assert_eq!(EngineKind::Dense.to_string(), "dense");
        assert_eq!(EngineKind::Interval.to_string(), "interval");
        assert_eq!(EngineKind::Fenwick.to_string(), "fenwick");
    }
}

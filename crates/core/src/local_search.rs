//! Local search refinement (§5.3) — the `-LS` suffix of the variants.
//!
//! Processors (execution units, including links) are visited in
//! non-increasing `P_work` order; on each unit, tasks are scanned left to
//! right; each task considers start times up to `µ` time units to the
//! left and right of its current start, from earliest to latest, and the
//! *first* move with positive gain is applied (first-improvement hill
//! climbing — the paper found best-improvement not worth its cost).
//! Rounds repeat until one full round yields no gain, so the result can
//! only be at least as good as the input (the search is a hill climber;
//! Table 2's "cost ratio larger than 1.0 is not possible").
//!
//! Legality of a move only depends on the *current* placements of the
//! task's `Gc` neighbours (which include its unit-order neighbours), so
//! the feasible window is `[max preds finish, min succs start - ω(v)]`
//! clipped to the horizon. Gains are evaluated incrementally through a
//! [`CostEngine`]: candidate shifts are priced via
//! [`CostEngine::shift_delta`] without cloning or re-costing the
//! schedule, and the search is generic over the backend — the
//! interval-sparse [`IntervalEngine`] by default, the dense oracle on
//! request.

use cawo_platform::{PowerProfile, Time};

use crate::engine::{CostEngine, IntervalEngine};
use crate::enhanced::Instance;
use crate::schedule::Schedule;

/// Outcome statistics of a local-search run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LocalSearchStats {
    /// Completed rounds (including the final gain-free round).
    pub rounds: u32,
    /// Number of applied moves.
    pub moves: u64,
    /// Total cost reduction.
    pub gain: u64,
}

/// Move-acceptance policy. The paper uses first-improvement; it notes
/// that checking "all legal moves and applying the best one" did not
/// significantly improve the outcome in preliminary experiments — both
/// are provided so that claim can be re-examined (`figures`' `ext-ls`
/// artifact and the `ablation` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LsPolicy {
    /// Apply the earliest candidate with positive gain (paper default).
    #[default]
    FirstImprovement,
    /// Scan all candidates and apply the one with the largest gain
    /// (earliest wins ties).
    BestImprovement,
}

/// Runs the local search in place with the paper's first-improvement
/// policy and the default ([`IntervalEngine`]) cost backend. `mu` is the
/// shift window (paper: 10). Returns statistics; the schedule is only
/// ever improved.
pub fn local_search(
    inst: &Instance,
    profile: &PowerProfile,
    sched: &mut Schedule,
    mu: Time,
) -> LocalSearchStats {
    local_search_with_policy(inst, profile, sched, mu, LsPolicy::FirstImprovement)
}

/// Runs the local search with an explicit move-acceptance policy on the
/// default ([`IntervalEngine`]) cost backend.
pub fn local_search_with_policy(
    inst: &Instance,
    profile: &PowerProfile,
    sched: &mut Schedule,
    mu: Time,
    policy: LsPolicy,
) -> LocalSearchStats {
    local_search_with_engine::<IntervalEngine>(inst, profile, sched, mu, policy)
}

/// Runs the local search on an explicit [`CostEngine`] backend, building
/// the engine from the input schedule.
pub fn local_search_with_engine<E: CostEngine>(
    inst: &Instance,
    profile: &PowerProfile,
    sched: &mut Schedule,
    mu: Time,
    policy: LsPolicy,
) -> LocalSearchStats {
    let mut engine = E::build(inst, sched, profile);
    local_search_on_engine(inst, profile, sched, mu, policy, &mut engine)
}

/// Core hill climber over a pre-built engine (shared with
/// [`crate::variant::Variant::run_with`], which reuses the engine the
/// greedy phase already constructed). The engine must track `sched`.
pub fn local_search_on_engine<E: CostEngine>(
    inst: &Instance,
    profile: &PowerProfile,
    sched: &mut Schedule,
    mu: Time,
    policy: LsPolicy,
    engine: &mut E,
) -> LocalSearchStats {
    let deadline = profile.deadline();
    debug_assert_eq!(engine.horizon(), deadline);

    // Units by non-increasing working power, ties by id.
    let mut units: Vec<u32> = (0..inst.unit_count() as u32).collect();
    units.sort_by_key(|&u| (std::cmp::Reverse(inst.unit(u).p_work), u));

    let mut stats = LocalSearchStats::default();
    loop {
        stats.rounds += 1;
        let mut round_gain = 0i64;
        for &u in &units {
            for &v in inst.unit_order(u) {
                let len = inst.exec(v);
                let w = inst.work_power(v) as i64;
                if w == 0 {
                    continue;
                }
                let s = sched.start(v);
                // Feasible window given current neighbour placements.
                let earliest = inst
                    .dag()
                    .predecessors(v)
                    .iter()
                    .map(|&p| sched.finish(p, inst))
                    .max()
                    .unwrap_or(0);
                let latest_by_succ = inst
                    .dag()
                    .successors(v)
                    .iter()
                    .map(|&q| sched.start(q))
                    .min()
                    .unwrap_or(deadline)
                    .saturating_sub(len);
                let latest = latest_by_succ.min(deadline - len);
                let lo = earliest.max(s.saturating_sub(mu));
                let hi = latest.min(s + mu);
                // Earliest-to-latest; acceptance per policy.
                let mut chosen: Option<(Time, i64)> = None;
                let mut cand = lo;
                while cand <= hi {
                    if cand != s {
                        let delta = engine.shift_delta(s, len, w, cand);
                        if delta < 0 {
                            match policy {
                                LsPolicy::FirstImprovement => {
                                    chosen = Some((cand, delta));
                                    break;
                                }
                                LsPolicy::BestImprovement => {
                                    if chosen.is_none_or(|(_, best)| delta < best) {
                                        chosen = Some((cand, delta));
                                    }
                                }
                            }
                        }
                    }
                    cand += 1;
                }
                if let Some((target, delta)) = chosen {
                    engine.apply_shift(s, len, w, target);
                    sched.set_start(v, target);
                    stats.moves += 1;
                    round_gain += -delta;
                }
            }
        }
        if round_gain == 0 {
            break;
        }
        stats.gain += round_gain as u64;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::carbon_cost;
    use crate::enhanced::UnitInfo;
    use crate::greedy::{greedy_schedule, GreedyConfig};
    use crate::scores::Score;
    use cawo_graph::dag::DagBuilder;

    fn single_task(exec: Time, p_work: u64) -> Instance {
        let dag = DagBuilder::new(1).build().unwrap();
        Instance::from_raw(
            dag,
            vec![exec],
            vec![0],
            vec![UnitInfo {
                p_idle: 0,
                p_work,
                is_link: false,
            }],
            0,
        )
    }

    #[test]
    fn slides_task_into_green_window() {
        // Green only in [6, 12); task of length 4 starts at 0.
        let inst = single_task(4, 10);
        let profile = PowerProfile::from_parts(vec![0, 6, 12], vec![0, 10]);
        let mut sched = Schedule::new(vec![0]);
        let before = carbon_cost(&inst, &sched, &profile);
        assert_eq!(before, 40);
        let stats = local_search(&inst, &profile, &mut sched, 10);
        let after = carbon_cost(&inst, &sched, &profile);
        assert_eq!(after, 0, "start: {}", sched.start(0));
        assert!(sched.start(0) >= 6 && sched.start(0) + 4 <= 12);
        assert_eq!(stats.gain, 40);
        assert!(stats.moves >= 1);
    }

    #[test]
    fn never_increases_cost() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..20 {
            let n = rng.gen_range(2..8);
            let mut b = DagBuilder::new(n);
            for i in 0..n as u32 {
                for j in i + 1..n as u32 {
                    if rng.gen_bool(0.3) {
                        b.add_edge(i, j);
                    }
                }
            }
            let dag = b.build().unwrap();
            let units: Vec<UnitInfo> = (0..2)
                .map(|_| UnitInfo {
                    p_idle: rng.gen_range(0..3),
                    p_work: rng.gen_range(1..15),
                    is_link: false,
                })
                .collect();
            let exec: Vec<Time> = (0..n).map(|_| rng.gen_range(1..6)).collect();
            let unit_of: Vec<u32> = (0..n).map(|_| rng.gen_range(0..2)).collect();
            let inst = Instance::from_raw(dag, exec, unit_of, units, 0);
            let asap = inst.asap_schedule();
            let deadline = asap.makespan(&inst) * 2 + 5;
            let budgets: Vec<u64> = (0..4).map(|_| rng.gen_range(0..20)).collect();
            let q = deadline / 4;
            let profile = PowerProfile::from_parts(vec![0, q, 2 * q, 3 * q, deadline], budgets);
            let mut sched = asap.clone();
            let before = carbon_cost(&inst, &sched, &profile);
            local_search(&inst, &profile, &mut sched, 7);
            let after = carbon_cost(&inst, &sched, &profile);
            assert!(after <= before, "trial {trial}: {after} > {before}");
            assert!(sched.validate(&inst, deadline).is_ok(), "trial {trial}");
        }
    }

    #[test]
    fn respects_precedences_while_moving() {
        // Chain 0 -> 1; moving 1 left is illegal below 0's finish.
        let mut b = DagBuilder::new(2);
        b.add_edge(0, 1);
        let inst = Instance::from_raw(
            b.build().unwrap(),
            vec![5, 5],
            vec![0, 1],
            vec![
                UnitInfo {
                    p_idle: 0,
                    p_work: 10,
                    is_link: false,
                },
                UnitInfo {
                    p_idle: 0,
                    p_work: 10,
                    is_link: false,
                },
            ],
            0,
        );
        // Green only at the very start: LS wants everything early, but 1
        // cannot start before 5.
        let profile = PowerProfile::from_parts(vec![0, 10, 30], vec![20, 0]);
        let mut sched = Schedule::new(vec![10, 20]);
        local_search(&inst, &profile, &mut sched, 30);
        assert!(sched.validate(&inst, 30).is_ok());
        assert!(sched.start(1) >= sched.finish(0, &inst));
    }

    #[test]
    fn mu_limits_the_shift_per_step() {
        // Task at 0, green window at [50, 60): µ=10 still gets there
        // eventually (10 per round-step), but µ=0 cannot move at all.
        let inst = single_task(5, 10);
        let profile = PowerProfile::from_parts(vec![0, 50, 60], vec![0, 10]);
        let mut stuck = Schedule::new(vec![0]);
        let stats = local_search(&inst, &profile, &mut stuck, 0);
        assert_eq!(stats.moves, 0);
        assert_eq!(stuck.start(0), 0);
    }

    #[test]
    fn multiple_rounds_travel_far() {
        // Strictly improving gradient lets µ=10 moves chain across
        // rounds: budgets increase to the right.
        let inst = single_task(5, 10);
        let profile = PowerProfile::from_parts(vec![0, 10, 20, 30, 40], vec![0, 4, 8, 10]);
        let mut sched = Schedule::new(vec![0]);
        let stats = local_search(&inst, &profile, &mut sched, 10);
        assert!(stats.rounds > 1);
        assert_eq!(carbon_cost(&inst, &sched, &profile), 0);
        assert!(sched.start(0) >= 30);
    }

    #[test]
    fn improves_or_preserves_greedy_output() {
        use cawo_graph::generator::{generate, Family, GeneratorConfig};
        use cawo_heft::heft_schedule;
        use cawo_platform::{Cluster, DeadlineFactor, ProfileConfig, Scenario};
        let wf = generate(&GeneratorConfig::new(Family::Methylseq, 60, 2));
        let cluster = Cluster::from_type_counts("mini", &[1, 1, 1, 1, 1, 1], 2);
        let mapping = heft_schedule(&wf, &cluster);
        let inst = Instance::build(&wf, &cluster, &mapping);
        let profile = ProfileConfig::new(Scenario::SolarMorning, DeadlineFactor::X30, 2)
            .build(&cluster, inst.asap_makespan());
        let cfg = GreedyConfig::new(Score::Pressure, true, true);
        let mut sched = greedy_schedule(&inst, &profile, cfg);
        let before = carbon_cost(&inst, &sched, &profile);
        let stats = local_search(&inst, &profile, &mut sched, 10);
        let after = carbon_cost(&inst, &sched, &profile);
        assert_eq!(before - after, stats.gain);
        assert!(after <= before);
        assert!(sched.validate(&inst, profile.deadline()).is_ok());
    }

    #[test]
    fn engines_take_identical_move_sequences() {
        // Both engines return *exact* deltas, so the deterministic hill
        // climber must make the same moves on either backend — the
        // resulting schedules are equal, not merely equal-cost.
        use crate::engine::DenseGrid;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..10 {
            let n = rng.gen_range(2..8);
            let mut b = DagBuilder::new(n);
            for i in 0..n as u32 {
                for j in i + 1..n as u32 {
                    if rng.gen_bool(0.25) {
                        b.add_edge(i, j);
                    }
                }
            }
            let units: Vec<UnitInfo> = (0..2)
                .map(|_| UnitInfo {
                    p_idle: rng.gen_range(0..3),
                    p_work: rng.gen_range(1..15),
                    is_link: false,
                })
                .collect();
            let inst = Instance::from_raw(
                b.build().unwrap(),
                (0..n).map(|_| rng.gen_range(1..6)).collect(),
                (0..n).map(|_| rng.gen_range(0..2)).collect(),
                units,
                0,
            );
            let asap = inst.asap_schedule();
            let deadline = asap.makespan(&inst) * 2 + 6;
            let q = deadline / 3;
            let profile = PowerProfile::from_parts(
                vec![0, q, 2 * q, deadline],
                (0..3).map(|_| rng.gen_range(0..20)).collect(),
            );
            for policy in [LsPolicy::FirstImprovement, LsPolicy::BestImprovement] {
                let mut dense = asap.clone();
                let mut sparse = asap.clone();
                let ds =
                    local_search_with_engine::<DenseGrid>(&inst, &profile, &mut dense, 9, policy);
                let is = local_search_with_engine::<IntervalEngine>(
                    &inst,
                    &profile,
                    &mut sparse,
                    9,
                    policy,
                );
                assert_eq!(dense, sparse, "trial {trial} {policy:?}");
                assert_eq!(ds, is, "trial {trial} {policy:?}");
            }
        }
    }

    #[test]
    fn stats_default_is_zero() {
        let s = LocalSearchStats::default();
        assert_eq!((s.rounds, s.moves, s.gain), (0, 0, 0));
    }

    #[test]
    fn best_improvement_is_monotone_and_valid() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for trial in 0..10 {
            let n = rng.gen_range(2..7);
            let mut b = DagBuilder::new(n);
            for i in 0..n as u32 {
                for j in i + 1..n as u32 {
                    if rng.gen_bool(0.3) {
                        b.add_edge(i, j);
                    }
                }
            }
            let inst = Instance::from_raw(
                b.build().unwrap(),
                (0..n).map(|_| rng.gen_range(1..6)).collect(),
                vec![0; n],
                vec![UnitInfo {
                    p_idle: 0,
                    p_work: rng.gen_range(1..10),
                    is_link: false,
                }],
                0,
            );
            let asap = inst.asap_schedule();
            let deadline = asap.makespan(&inst) * 2 + 4;
            let profile = PowerProfile::from_parts(
                vec![0, deadline / 2, deadline],
                vec![rng.gen_range(0..15), rng.gen_range(0..15)],
            );
            let mut first = asap.clone();
            let mut best = asap.clone();
            let base = carbon_cost(&inst, &asap, &profile);
            let fs = local_search_with_policy(
                &inst,
                &profile,
                &mut first,
                8,
                LsPolicy::FirstImprovement,
            );
            let bs =
                local_search_with_policy(&inst, &profile, &mut best, 8, LsPolicy::BestImprovement);
            let fc = carbon_cost(&inst, &first, &profile);
            let bc = carbon_cost(&inst, &best, &profile);
            assert!(fc <= base && bc <= base, "trial {trial}");
            assert_eq!(base - fc, fs.gain);
            assert_eq!(base - bc, bs.gain);
            assert!(best.validate(&inst, deadline).is_ok(), "trial {trial}");
        }
    }

    #[test]
    fn best_improvement_takes_the_larger_gain() {
        // Task at 0 (len 2, power 10); two green windows reachable in
        // one mu-step: [3,5) budget 6 and [8,10) budget 10. First-
        // improvement settles at 3; best-improvement jumps to 8.
        let inst = single_task(2, 10);
        let profile = PowerProfile::from_parts(vec![0, 3, 5, 8, 10], vec![0, 6, 0, 10]);
        let mut first = Schedule::new(vec![0]);
        local_search_with_policy(&inst, &profile, &mut first, 10, LsPolicy::FirstImprovement);
        let mut best = Schedule::new(vec![0]);
        local_search_with_policy(&inst, &profile, &mut best, 10, LsPolicy::BestImprovement);
        assert_eq!(carbon_cost(&inst, &best, &profile), 0);
        assert!(carbon_cost(&inst, &best, &profile) <= carbon_cost(&inst, &first, &profile));
        assert_eq!(best.start(0), 8);
    }
}

//! Carbon cost of a schedule.
//!
//! §3 defines the carbon cost at time `t` as
//! `CC_t = max(P_t - G_j, 0)` where `P_t` sums idle power of *all*
//! processors (compute and links) plus working power of the active ones,
//! and `G_j` is the green budget of the interval containing `t`. The
//! total cost is `Σ_t CC_t`.
//!
//! Because total idle power is constant in time, only the *working* power
//! varies with the schedule; we work with
//! `CC_t = max(W(t) - d(t), 0)`, `d(t) = G_j - Σ P_idle` (possibly
//! negative in general instances, although §6.1's generation rule keeps
//! it non-negative).
//!
//! Two stateless evaluators are provided here:
//!
//! * [`carbon_cost`] — the polynomial interval/subinterval sweep of
//!   Appendix A.1 (`O((N + J) log N)`), used for all reported costs,
//! * [`carbon_cost_naive`] — the pseudo-polynomial per-time-unit loop
//!   from §3, kept as a test oracle.
//!
//! The *incremental* evaluators that power the local search live in
//! [`crate::engine`]: the [`crate::engine::CostEngine`] trait with the
//! per-time-unit [`crate::engine::DenseGrid`] oracle and the
//! interval-sparse [`crate::engine::IntervalEngine`] production
//! backend.

use cawo_graph::NodeId;
use cawo_platform::{PowerProfile, Time};

use crate::enhanced::Instance;
use crate::schedule::Schedule;

/// Total carbon cost (green-budget overshoot integrated over time).
pub type Cost = u64;

/// Narrows a `u128` cost accumulator to the public [`Cost`] width.
///
/// Cost sweeps accumulate in `u128` so intermediate sums of
/// `power × duration` products cannot overflow. The final total fits
/// `u64` for every instance the builders accept (bounded horizon and
/// per-unit power); a value past `u64::MAX` means instance validation
/// is broken, which is a bug, not a recoverable solver condition.
pub(crate) fn narrow_cost(cost: u128) -> Cost {
    // cawo-lint: allow(panic-path) — see above: unreachable for any
    // instance that passed build-time validation.
    Cost::try_from(cost).expect("carbon cost fits in u64")
}

/// Polynomial-time cost evaluation (Appendix A.1).
///
/// Sweeps the merged breakpoints of task starts/ends and interval
/// boundaries; within each produced subinterval both the working power
/// and the budget are constant. Time past the profile's deadline (only
/// possible for invalid schedules) is costed with budget 0.
pub fn carbon_cost(inst: &Instance, sched: &Schedule, profile: &PowerProfile) -> Cost {
    sweep_cost(inst, sched, profile, 0)
}

/// Carbon cost restricted to the suffix `[from, ∞)` of the horizon.
///
/// Identical sweep to [`carbon_cost`], but segments before `from`
/// contribute nothing: the running working power is pre-rolled up to
/// `from` and the sweep starts there. By construction
/// `carbon_cost(..) == carbon_cost_from(.., 0)` and, for any split
/// point `t`, `carbon_cost(..) == (cost over [0,t)) +
/// carbon_cost_from(.., t)` — the identity the incremental trace-tail
/// re-answer in [`crate::engine::reanswer`] relies on.
pub fn carbon_cost_from(
    inst: &Instance,
    sched: &Schedule,
    profile: &PowerProfile,
    from: Time,
) -> Cost {
    sweep_cost(inst, sched, profile, from)
}

fn sweep_cost(inst: &Instance, sched: &Schedule, profile: &PowerProfile, from: Time) -> Cost {
    let n = inst.node_count();
    let mut events: Vec<(Time, i64)> = Vec::with_capacity(2 * n);
    for v in 0..n as NodeId {
        let w = inst.work_power(v) as i64;
        if w == 0 {
            continue;
        }
        let s = sched.start(v);
        events.push((s, w));
        events.push((s + inst.exec(v), -w));
    }
    events.sort_unstable();

    let idle = inst.total_idle_power() as i64;
    let boundaries = profile.boundaries();
    let deadline = profile.deadline();

    let mut cost: u128 = 0;
    let mut work: i64 = 0;
    let mut ei = 0; // next event
    let end = events.last().map_or(deadline, |&(te, _)| te.max(deadline));
    if from >= end {
        return 0;
    }
    // Pre-roll the working power over [0, from): events strictly before
    // the suffix start are applied without costing their segments.
    while ei < events.len() && events[ei].0 < from {
        work += events[ei].1;
        ei += 1;
    }
    let mut t: Time = from;
    let mut bi = boundaries.partition_point(|&b| b <= from); // next boundary > t
    while t < end {
        // Apply all events at time t.
        while ei < events.len() && events[ei].0 == t {
            work += events[ei].1;
            ei += 1;
        }
        // Next breakpoint: next event or next interval boundary.
        let next_event = events.get(ei).map_or(Time::MAX, |&(te, _)| te);
        let next_boundary = if bi < boundaries.len() {
            boundaries[bi]
        } else {
            Time::MAX
        };
        let next = next_event.min(next_boundary).min(end);
        debug_assert!(next > t);
        let budget = if t < deadline {
            profile.budget_at(t) as i64
        } else {
            0
        };
        let over = (idle + work - budget).max(0) as u128;
        cost += over * (next - t) as u128;
        if next == next_boundary {
            bi += 1;
        }
        t = next;
    }
    // Drain end-of-horizon events (zero-length remainder, no cost).
    while ei < events.len() {
        debug_assert_eq!(events[ei].0, t);
        work += events[ei].1;
        ei += 1;
    }
    debug_assert_eq!(work, 0, "every started task must end");
    narrow_cost(cost)
}

/// Pseudo-polynomial oracle: materialises working power per time unit and
/// sums `max(P_t - G_t, 0)` exactly as §3 writes it. Quadratic-ish in the
/// horizon; use only in tests.
pub fn carbon_cost_naive(inst: &Instance, sched: &Schedule, profile: &PowerProfile) -> Cost {
    let deadline = profile.deadline();
    let horizon = (0..inst.node_count() as NodeId)
        .map(|v| sched.finish(v, inst))
        .max()
        .unwrap_or(0)
        .max(deadline) as usize;
    let mut diff = vec![0i64; horizon + 1];
    for v in 0..inst.node_count() as NodeId {
        let w = inst.work_power(v) as i64;
        diff[sched.start(v) as usize] += w;
        diff[sched.finish(v, inst) as usize] -= w;
    }
    let idle = inst.total_idle_power() as i64;
    let mut work = 0i64;
    let mut cost: u128 = 0;
    #[allow(clippy::needless_range_loop)] // indices double as time units
    for t in 0..horizon {
        work += diff[t];
        let budget = if (t as Time) < deadline {
            profile.budget_at(t as Time) as i64
        } else {
            0
        };
        cost += (idle + work - budget).max(0) as u128;
    }
    narrow_cost(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enhanced::UnitInfo;
    use cawo_graph::dag::DagBuilder;
    use cawo_platform::PowerProfile;

    /// Two independent tasks on two units: exec 4 & 2, work power 10 & 5.
    fn two_task_instance() -> Instance {
        let dag = DagBuilder::new(2).build().unwrap();
        Instance::from_raw(
            dag,
            vec![4, 2],
            vec![0, 1],
            vec![
                UnitInfo {
                    p_idle: 3,
                    p_work: 10,
                    is_link: false,
                },
                UnitInfo {
                    p_idle: 2,
                    p_work: 5,
                    is_link: false,
                },
            ],
            0,
        )
    }

    #[test]
    fn cost_hand_computed() {
        let inst = two_task_instance();
        // Idle = 5. Profile: [0,4) budget 10, [4,8) budget 6.
        let profile = PowerProfile::from_parts(vec![0, 4, 8], vec![10, 6]);
        // Task 0 at 0..4 (power 10), task 1 at 4..6 (power 5).
        let s = Schedule::new(vec![0, 4]);
        // t in [0,4): P = 5+10 = 15, G = 10 ⇒ 5/unit ⇒ 20.
        // t in [4,6): P = 5+5 = 10, G = 6 ⇒ 4/unit ⇒ 8.
        // t in [6,8): P = 5, G = 6 ⇒ 0.
        assert_eq!(carbon_cost(&inst, &s, &profile), 28);
        assert_eq!(carbon_cost_naive(&inst, &s, &profile), 28);
    }

    #[test]
    fn overlapping_tasks_sum_power() {
        let inst = two_task_instance();
        let profile = PowerProfile::from_parts(vec![0, 8], vec![10]);
        let s = Schedule::new(vec![0, 0]);
        // [0,2): 5+15 − 10 = 10 ⇒ 20; [2,4): 5+10 − 10 = 5 ⇒ 10; rest 0.
        assert_eq!(carbon_cost(&inst, &s, &profile), 30);
        assert_eq!(carbon_cost_naive(&inst, &s, &profile), 30);
    }

    #[test]
    fn zero_cost_when_budget_suffices() {
        let inst = two_task_instance();
        let profile = PowerProfile::uniform(10, 100);
        let s = Schedule::new(vec![0, 5]);
        assert_eq!(carbon_cost(&inst, &s, &profile), 0);
    }

    #[test]
    fn budget_below_idle_is_charged() {
        // General-case handling: G < Σ P_idle ⇒ idle overflow is costed.
        let inst = two_task_instance(); // idle 5
        let profile = PowerProfile::uniform(10, 3);
        let s = Schedule::new(vec![0, 4]);
        // [0,4): 15−3=12 ⇒48. [4,6): 10−3=7 ⇒14. [6,10): 5−3=2 ⇒8.
        assert_eq!(carbon_cost(&inst, &s, &profile), 70);
        assert_eq!(carbon_cost_naive(&inst, &s, &profile), 70);
    }

    #[test]
    fn sweep_matches_naive_on_random_schedules() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            // Random instance: 6 independent tasks, varied powers.
            let dag = DagBuilder::new(6).build().unwrap();
            let units: Vec<UnitInfo> = (0..6)
                .map(|_| UnitInfo {
                    p_idle: rng.gen_range(0..5),
                    p_work: rng.gen_range(1..20),
                    is_link: false,
                })
                .collect();
            let exec: Vec<Time> = (0..6).map(|_| rng.gen_range(1..10)).collect();
            let inst = Instance::from_raw(dag, exec.clone(), (0..6).collect(), units, 0);
            let boundaries = {
                let mut b = vec![0 as Time];
                let mut t = 0;
                for _ in 0..4 {
                    t += rng.gen_range(5..15);
                    b.push(t);
                }
                b
            };
            let deadline = *boundaries.last().unwrap();
            let budgets = (0..4).map(|_| rng.gen_range(0..40)).collect();
            let profile = PowerProfile::from_parts(boundaries, budgets);
            let starts: Vec<Time> = (0..6)
                .map(|v| rng.gen_range(0..=(deadline - exec[v])))
                .collect();
            let s = Schedule::new(starts);
            assert_eq!(
                carbon_cost(&inst, &s, &profile),
                carbon_cost_naive(&inst, &s, &profile)
            );
        }
    }

    #[test]
    fn suffix_cost_splits_total() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let inst = two_task_instance();
        for _ in 0..40 {
            let boundaries = vec![0, 4, 9, 16];
            let budgets = (0..3).map(|_| rng.gen_range(0..20)).collect();
            let profile = PowerProfile::from_parts(boundaries, budgets);
            let s = Schedule::new(vec![rng.gen_range(0..=12), rng.gen_range(0..=14)]);
            let total = carbon_cost(&inst, &s, &profile);
            assert_eq!(carbon_cost_from(&inst, &s, &profile, 0), total);
            for from in 0..=20 {
                let suffix = carbon_cost_from(&inst, &s, &profile, from);
                let prefix = total - suffix; // suffix ≤ total by construction
                                             // Re-derive the prefix independently: total of a profile
                                             // truncated at `from` would change budgets, so instead
                                             // check monotonicity and the exact split at breakpoints.
                assert!(suffix <= total, "from {from}");
                let _ = prefix;
            }
            // Exact split check: suffix(from) + (total − suffix(from))
            // must reconstruct the sweep — verified against the naive
            // per-time-unit oracle restricted to the suffix.
            for from in [0, 3, 4, 5, 9, 13, 16, 40] {
                let suffix = carbon_cost_from(&inst, &s, &profile, from);
                let naive_suffix: u64 = {
                    let deadline = profile.deadline();
                    let horizon = (0..2)
                        .map(|v| s.finish(v, &inst))
                        .max()
                        .unwrap()
                        .max(deadline);
                    let idle = inst.total_idle_power() as i64;
                    (from..horizon)
                        .map(|t| {
                            let mut p = idle;
                            for v in 0..2 {
                                if s.start(v) <= t && t < s.finish(v, &inst) {
                                    p += inst.work_power(v) as i64;
                                }
                            }
                            let g = if t < deadline {
                                profile.budget_at(t) as i64
                            } else {
                                0
                            };
                            (p - g).max(0) as u64
                        })
                        .sum()
                };
                assert_eq!(suffix, naive_suffix, "from {from}");
            }
        }
    }
}

/// Energy accounting of a schedule: where every unit of energy came
/// from. `green + brown` equals the platform's total energy demand, and
/// `brown` equals [`carbon_cost`] — the paper's objective is exactly the
/// brown share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnergyReport {
    /// Energy drawn from the green budget.
    pub green: u64,
    /// Energy drawn above the budget (= the carbon cost).
    pub brown: u64,
    /// Green budget that went unused.
    pub wasted_green: u64,
    /// Share of demand that was idle power (schedule-independent).
    pub idle_energy: u64,
    /// Share of demand from working power (schedule-dependent).
    pub work_energy: u64,
}

impl EnergyReport {
    /// Total platform energy demand over the horizon.
    pub fn total_demand(&self) -> u64 {
        self.green + self.brown
    }

    /// Fraction of demand covered by green energy (1.0 when demand is 0).
    pub fn green_fraction(&self) -> f64 {
        let d = self.total_demand();
        if d == 0 {
            1.0
        } else {
            self.green as f64 / d as f64
        }
    }
}

/// Computes the full energy breakdown with the interval-sweep engine.
/// The schedule must fit the profile horizon.
pub fn energy_report(inst: &Instance, sched: &Schedule, profile: &PowerProfile) -> EnergyReport {
    let n = inst.node_count();
    let mut events: Vec<(Time, i64)> = Vec::with_capacity(2 * n);
    let mut work_energy: u128 = 0;
    for v in 0..n as NodeId {
        let w = inst.work_power(v) as i64;
        if w == 0 {
            continue;
        }
        let s = sched.start(v);
        events.push((s, w));
        events.push((s + inst.exec(v), -w));
        work_energy += (w as u128) * inst.exec(v) as u128;
    }
    events.sort_unstable();

    let idle = inst.total_idle_power() as i64;
    let deadline = profile.deadline();
    let idle_energy = idle as u128 * deadline as u128;

    let mut green: u128 = 0;
    let mut brown: u128 = 0;
    let mut wasted: u128 = 0;
    let mut work: i64 = 0;
    let mut t: Time = 0;
    let mut ei = 0;
    let boundaries = profile.boundaries();
    let mut bi = 1;
    while t < deadline {
        while ei < events.len() && events[ei].0 == t {
            work += events[ei].1;
            ei += 1;
        }
        let next_event = events.get(ei).map_or(Time::MAX, |&(te, _)| te);
        let next_boundary = if bi < boundaries.len() {
            boundaries[bi]
        } else {
            Time::MAX
        };
        let next = next_event.min(next_boundary).min(deadline);
        let budget = profile.budget_at(t) as i64;
        let demand = idle + work;
        let len = (next - t) as u128;
        let g = demand.min(budget).max(0) as u128;
        let b = (demand - budget).max(0) as u128;
        let wg = (budget - demand).max(0) as u128;
        green += g * len;
        brown += b * len;
        wasted += wg * len;
        if next == next_boundary {
            bi += 1;
        }
        t = next;
    }
    while ei < events.len() {
        work += events[ei].1;
        ei += 1;
    }
    debug_assert_eq!(work, 0);
    EnergyReport {
        green: narrow_cost(green),
        brown: narrow_cost(brown),
        wasted_green: narrow_cost(wasted),
        idle_energy: narrow_cost(idle_energy),
        work_energy: narrow_cost(work_energy),
    }
}

#[cfg(test)]
mod energy_tests {
    use super::*;
    use crate::enhanced::UnitInfo;
    use cawo_graph::dag::DagBuilder;

    fn one_task() -> Instance {
        let dag = DagBuilder::new(1).build().unwrap();
        Instance::from_raw(
            dag,
            vec![4],
            vec![0],
            vec![UnitInfo {
                p_idle: 3,
                p_work: 10,
                is_link: false,
            }],
            0,
        )
    }

    #[test]
    fn brown_equals_carbon_cost() {
        let inst = one_task();
        let profile = PowerProfile::from_parts(vec![0, 4, 8], vec![10, 6]);
        for start in 0..=4 {
            let sched = Schedule::new(vec![start]);
            let rep = energy_report(&inst, &sched, &profile);
            assert_eq!(
                rep.brown,
                carbon_cost(&inst, &sched, &profile),
                "start {start}"
            );
        }
    }

    #[test]
    fn demand_identity() {
        let inst = one_task();
        let profile = PowerProfile::from_parts(vec![0, 4, 8], vec![10, 6]);
        let sched = Schedule::new(vec![2]);
        let rep = energy_report(&inst, &sched, &profile);
        // Demand = idle over horizon + work over task run.
        assert_eq!(rep.idle_energy, 3 * 8);
        assert_eq!(rep.work_energy, 10 * 4);
        assert_eq!(rep.total_demand(), rep.idle_energy + rep.work_energy);
    }

    #[test]
    fn green_plus_wasted_is_total_budget() {
        let inst = one_task();
        let profile = PowerProfile::from_parts(vec![0, 4, 8], vec![10, 6]);
        let sched = Schedule::new(vec![0]);
        let rep = energy_report(&inst, &sched, &profile);
        assert_eq!(
            (rep.green + rep.wasted_green) as u128,
            profile.total_green_energy()
        );
    }

    #[test]
    fn green_fraction_bounds() {
        let inst = one_task();
        // Plenty of green: fraction 1.
        let rich = PowerProfile::uniform(8, 100);
        let sched = Schedule::new(vec![0]);
        assert_eq!(energy_report(&inst, &sched, &rich).green_fraction(), 1.0);
        // No green at all: fraction 0.
        let poor = PowerProfile::uniform(8, 0);
        assert_eq!(energy_report(&inst, &sched, &poor).green_fraction(), 0.0);
    }
}

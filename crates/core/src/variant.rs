//! The named algorithm variants of the paper.
//!
//! Four scores (slack, slackW, press, pressW) × two subdivisions
//! (normal, refined `R`) × optional local search (`-LS`) = 16 CaWoSched
//! heuristics, plus the carbon-unaware [`Variant::Asap`] baseline.

use cawo_platform::{PowerProfile, Time};

use crate::engine::{CostEngine, DenseGrid, EngineKind, FenwickEngine, IntervalEngine};
use crate::enhanced::Instance;
use crate::greedy::{greedy_schedule, greedy_schedule_with_engine, GreedyConfig};
use crate::local_search::{local_search_on_engine, LsPolicy};
use crate::schedule::Schedule;
use crate::scores::Score;

/// Tunable parameters shared by all variants (paper defaults: `k = 3`,
/// `µ = 10`; cost engine: interval-sparse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunParams {
    /// Local-search window `µ`.
    pub mu: Time,
    /// Refined-subdivision block size `k`.
    pub block_k: usize,
    /// Cap on refined boundaries (tractability guard; `usize::MAX` to
    /// reproduce the uncapped construction).
    pub refine_cap: usize,
    /// Incremental cost backend for the `-LS` phase. Both backends
    /// produce identical schedules (the deltas are exact either way);
    /// [`EngineKind::Dense`] re-enables the pseudo-polynomial oracle.
    pub engine: EngineKind,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            mu: 10,
            block_k: 3,
            refine_cap: 4096,
            engine: EngineKind::default(),
        }
    }
}

/// One of the 17 evaluated algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // systematic naming: score / W(eighted) / R(efined) / Ls
pub enum Variant {
    Asap,
    Slack,
    SlackW,
    SlackR,
    SlackWR,
    Press,
    PressW,
    PressR,
    PressWR,
    SlackLs,
    SlackWLs,
    SlackRLs,
    SlackWRLs,
    PressLs,
    PressWLs,
    PressRLs,
    PressWRLs,
}

impl Variant {
    /// All 17 variants: baseline first, then the greedy-only eight, then
    /// the eight with local search (paper's Figure 1 ordering).
    pub const ALL: [Variant; 17] = [
        Variant::Asap,
        Variant::Slack,
        Variant::SlackW,
        Variant::SlackR,
        Variant::SlackWR,
        Variant::Press,
        Variant::PressW,
        Variant::PressR,
        Variant::PressWR,
        Variant::SlackLs,
        Variant::SlackWLs,
        Variant::SlackRLs,
        Variant::SlackWRLs,
        Variant::PressLs,
        Variant::PressWLs,
        Variant::PressRLs,
        Variant::PressWRLs,
    ];

    /// The 16 CaWoSched heuristics (everything but the baseline).
    pub const CAWOSCHED: [Variant; 16] = [
        Variant::Slack,
        Variant::SlackW,
        Variant::SlackR,
        Variant::SlackWR,
        Variant::Press,
        Variant::PressW,
        Variant::PressR,
        Variant::PressWR,
        Variant::SlackLs,
        Variant::SlackWLs,
        Variant::SlackRLs,
        Variant::SlackWRLs,
        Variant::PressLs,
        Variant::PressWLs,
        Variant::PressRLs,
        Variant::PressWRLs,
    ];

    /// The eight variants *with* local search — the main configuration
    /// of §6.2.
    pub const WITH_LS: [Variant; 8] = [
        Variant::SlackLs,
        Variant::SlackWLs,
        Variant::SlackRLs,
        Variant::SlackWRLs,
        Variant::PressLs,
        Variant::PressWLs,
        Variant::PressRLs,
        Variant::PressWRLs,
    ];

    /// Paper name, e.g. `"pressWR-LS"`.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Asap => "ASAP",
            Variant::Slack => "slack",
            Variant::SlackW => "slackW",
            Variant::SlackR => "slackR",
            Variant::SlackWR => "slackWR",
            Variant::Press => "press",
            Variant::PressW => "pressW",
            Variant::PressR => "pressR",
            Variant::PressWR => "pressWR",
            Variant::SlackLs => "slack-LS",
            Variant::SlackWLs => "slackW-LS",
            Variant::SlackRLs => "slackR-LS",
            Variant::SlackWRLs => "slackWR-LS",
            Variant::PressLs => "press-LS",
            Variant::PressWLs => "pressW-LS",
            Variant::PressRLs => "pressR-LS",
            Variant::PressWRLs => "pressWR-LS",
        }
    }

    /// Parses a paper name (inverse of [`Variant::name`]). Matching is
    /// ASCII case-insensitive — paper names mix cases (`ASAP`,
    /// `pressWR-LS`) and CLI users should not have to remember which
    /// letters are capitalised.
    pub fn from_name(name: &str) -> Option<Variant> {
        Variant::ALL
            .into_iter()
            .find(|v| v.name().eq_ignore_ascii_case(name))
    }

    /// Greedy components `(score, weighted, refined, local_search)`;
    /// `None` for the baseline.
    pub fn components(self) -> Option<(Score, bool, bool, bool)> {
        use Variant::*;
        Some(match self {
            Asap => return None,
            Slack => (Score::Slack, false, false, false),
            SlackW => (Score::Slack, true, false, false),
            SlackR => (Score::Slack, false, true, false),
            SlackWR => (Score::Slack, true, true, false),
            Press => (Score::Pressure, false, false, false),
            PressW => (Score::Pressure, true, false, false),
            PressR => (Score::Pressure, false, true, false),
            PressWR => (Score::Pressure, true, true, false),
            SlackLs => (Score::Slack, false, false, true),
            SlackWLs => (Score::Slack, true, false, true),
            SlackRLs => (Score::Slack, false, true, true),
            SlackWRLs => (Score::Slack, true, true, true),
            PressLs => (Score::Pressure, false, false, true),
            PressWLs => (Score::Pressure, true, false, true),
            PressRLs => (Score::Pressure, false, true, true),
            PressWRLs => (Score::Pressure, true, true, true),
        })
    }

    /// Whether this variant applies the local search.
    pub fn has_local_search(self) -> bool {
        self.components().is_some_and(|(_, _, _, ls)| ls)
    }

    /// The greedy-only counterpart of an `-LS` variant (identity for
    /// greedy-only variants and the baseline). Used for Table 2.
    pub fn without_local_search(self) -> Variant {
        use Variant::*;
        match self {
            SlackLs => Slack,
            SlackWLs => SlackW,
            SlackRLs => SlackR,
            SlackWRLs => SlackWR,
            PressLs => Press,
            PressWLs => PressW,
            PressRLs => PressR,
            PressWRLs => PressWR,
            other => other,
        }
    }

    /// Runs the variant with paper-default parameters.
    pub fn run(self, inst: &Instance, profile: &PowerProfile) -> Schedule {
        self.run_with(inst, profile, RunParams::default())
    }

    /// Runs the variant with explicit parameters. The cost engine named
    /// by `params.engine` is built once after the greedy phase and
    /// drives the whole local search.
    pub fn run_with(self, inst: &Instance, profile: &PowerProfile, params: RunParams) -> Schedule {
        match self.components() {
            None => inst.asap_schedule(),
            Some((score, weighted, refined, ls)) => {
                let cfg = GreedyConfig {
                    score,
                    weighted,
                    refined,
                    block_k: params.block_k,
                    refine_cap: params.refine_cap,
                };
                if !ls {
                    return greedy_schedule(inst, profile, cfg);
                }
                match params.engine {
                    EngineKind::Dense => run_ls::<DenseGrid>(inst, profile, cfg, params.mu),
                    EngineKind::Interval => run_ls::<IntervalEngine>(inst, profile, cfg, params.mu),
                    EngineKind::Fenwick => run_ls::<FenwickEngine>(inst, profile, cfg, params.mu),
                }
            }
        }
    }
}

/// Greedy + local search over one concrete engine backend.
fn run_ls<E: CostEngine>(
    inst: &Instance,
    profile: &PowerProfile,
    cfg: GreedyConfig,
    mu: Time,
) -> Schedule {
    let (mut sched, mut engine) = greedy_schedule_with_engine::<E>(inst, profile, cfg);
    local_search_on_engine(
        inst,
        profile,
        &mut sched,
        mu,
        LsPolicy::FirstImprovement,
        &mut engine,
    );
    sched
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::carbon_cost;
    use cawo_graph::generator::{generate, Family, GeneratorConfig};
    use cawo_heft::heft_schedule;
    use cawo_platform::{Cluster, DeadlineFactor, ProfileConfig, Scenario};

    #[test]
    fn seventeen_variants_with_unique_names() {
        let names: std::collections::BTreeSet<_> = Variant::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), 17);
        assert_eq!(Variant::CAWOSCHED.len(), 16);
        assert_eq!(Variant::WITH_LS.len(), 8);
    }

    #[test]
    fn names_roundtrip() {
        for v in Variant::ALL {
            assert_eq!(Variant::from_name(v.name()), Some(v));
        }
        assert_eq!(Variant::from_name("nope"), None);
    }

    #[test]
    fn from_name_is_case_insensitive() {
        assert_eq!(Variant::from_name("asap"), Some(Variant::Asap));
        assert_eq!(Variant::from_name("ASAP"), Some(Variant::Asap));
        assert_eq!(Variant::from_name("presswr-ls"), Some(Variant::PressWRLs));
        assert_eq!(Variant::from_name("PRESSWR-LS"), Some(Variant::PressWRLs));
        assert_eq!(Variant::from_name("SlackW"), Some(Variant::SlackW));
    }

    #[test]
    fn both_engines_produce_identical_schedules() {
        let wf = generate(&GeneratorConfig::new(Family::Methylseq, 50, 9));
        let cluster = Cluster::from_type_counts("mini", &[1, 1, 0, 1, 1, 0], 9);
        let mapping = heft_schedule(&wf, &cluster);
        let inst = Instance::build(&wf, &cluster, &mapping);
        let profile = ProfileConfig::new(Scenario::SolarMidday, DeadlineFactor::X20, 9)
            .build(&cluster, inst.asap_makespan());
        for v in Variant::ALL {
            let dense = v.run_with(
                &inst,
                &profile,
                RunParams {
                    engine: crate::engine::EngineKind::Dense,
                    ..RunParams::default()
                },
            );
            let sparse = v.run_with(
                &inst,
                &profile,
                RunParams {
                    engine: crate::engine::EngineKind::Interval,
                    ..RunParams::default()
                },
            );
            assert_eq!(dense, sparse, "{v}");
        }
    }

    #[test]
    fn components_match_names() {
        let (score, w, r, ls) = Variant::PressWRLs.components().unwrap();
        assert_eq!(score, Score::Pressure);
        assert!(w && r && ls);
        assert!(Variant::Asap.components().is_none());
        let (score, w, r, ls) = Variant::Slack.components().unwrap();
        assert_eq!(score, Score::Slack);
        assert!(!w && !r && !ls);
    }

    #[test]
    fn ls_strip_mapping() {
        assert_eq!(Variant::PressWRLs.without_local_search(), Variant::PressWR);
        assert_eq!(Variant::SlackLs.without_local_search(), Variant::Slack);
        assert_eq!(Variant::Press.without_local_search(), Variant::Press);
        assert_eq!(Variant::Asap.without_local_search(), Variant::Asap);
        for v in Variant::WITH_LS {
            assert!(v.has_local_search());
            assert!(!v.without_local_search().has_local_search());
        }
    }

    #[test]
    fn all_variants_valid_and_ls_no_worse_than_greedy() {
        let wf = generate(&GeneratorConfig::new(Family::Bacass, 40, 77));
        let cluster = Cluster::from_type_counts("mini", &[1, 0, 1, 0, 1, 1], 77);
        let mapping = heft_schedule(&wf, &cluster);
        let inst = Instance::build(&wf, &cluster, &mapping);
        let profile = ProfileConfig::new(Scenario::Sinusoidal, DeadlineFactor::X20, 77)
            .build(&cluster, inst.asap_makespan());
        let mut costs = std::collections::BTreeMap::new();
        for v in Variant::ALL {
            let s = v.run(&inst, &profile);
            assert!(s.validate(&inst, profile.deadline()).is_ok(), "{v}");
            costs.insert(v, carbon_cost(&inst, &s, &profile));
        }
        for v in Variant::WITH_LS {
            assert!(
                costs[&v] <= costs[&v.without_local_search()],
                "{v} worse than its greedy-only counterpart"
            );
        }
    }

    #[test]
    fn asap_runs_at_est() {
        let wf = generate(&GeneratorConfig::new(Family::Eager, 30, 1));
        let cluster = Cluster::tiny(&[2, 4], 1);
        let mapping = heft_schedule(&wf, &cluster);
        let inst = Instance::build(&wf, &cluster, &mapping);
        let profile = ProfileConfig::new(Scenario::Constant, DeadlineFactor::X15, 1)
            .build(&cluster, inst.asap_makespan());
        let s = Variant::Asap.run(&inst, &profile);
        assert_eq!(s, inst.asap_schedule());
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(Variant::PressWRLs.to_string(), "pressWR-LS");
        assert_eq!(Variant::Asap.to_string(), "ASAP");
    }
}

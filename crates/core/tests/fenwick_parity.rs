//! Differential parity suite for the Fenwick cost engine: on random
//! instances, schedules and move sequences, [`FenwickEngine`] must
//! report *exactly* the same totals, placement deltas and shift deltas
//! as the [`DenseGrid`] oracle and the [`IntervalEngine`] production
//! backend — bit-for-bit, not approximately.

// Test code may unwrap freely (policy: clippy.toml); integration-test
// crates need the explicit allow because they are not cfg(test).
#![allow(clippy::unwrap_used)]
use proptest::prelude::*;

use cawo_core::enhanced::UnitInfo;
use cawo_core::{
    carbon_cost, CostEngine, DenseGrid, FenwickEngine, Instance, IntervalEngine, Schedule,
};
use cawo_graph::dag::DagBuilder;
use cawo_platform::{PowerProfile, Time};

/// Independent tasks with the given execution times and powers, one
/// unit per task.
fn independent_instance(exec: &[Time], powers: &[(u64, u64)]) -> Instance {
    let n = exec.len();
    let dag = DagBuilder::new(n).build().unwrap();
    let units: Vec<UnitInfo> = powers
        .iter()
        .map(|&(p_idle, p_work)| UnitInfo {
            p_idle,
            p_work,
            is_link: false,
        })
        .collect();
    Instance::from_raw(dag, exec.to_vec(), (0..n as u32).collect(), units, 0)
}

/// Profile with `budgets.len()` near-equal intervals over `[0, horizon)`.
fn spread_profile(horizon: Time, budgets: &[u64]) -> PowerProfile {
    let j = budgets.len() as u64;
    let mut bounds = vec![0];
    for k in 1..=j {
        let t = horizon * k / j;
        if t > *bounds.last().unwrap() {
            bounds.push(t);
        }
    }
    let m = bounds.len() - 1;
    PowerProfile::from_parts(bounds, budgets[..m].to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fenwick_matches_both_engines_through_a_move_sequence(
        exec in proptest::collection::vec(1u64..8, 2..6),
        powers in proptest::collection::vec((0u64..4, 0u64..12), 6),
        budgets in proptest::collection::vec(0u64..25, 1..5),
        extra in 4u64..20,
        moves in proptest::collection::vec((0usize..6, 0u64..1000), 1..30),
    ) {
        let n = exec.len();
        let inst = independent_instance(&exec, &powers[..n]);
        let horizon: Time = exec.iter().sum::<u64>() + extra;
        let profile = spread_profile(horizon, &budgets);
        let mut sched = Schedule::new(vec![0; n]);

        let mut dense = DenseGrid::build(&inst, &sched, &profile);
        let mut sparse = IntervalEngine::build(&inst, &sched, &profile);
        let mut fenwick = FenwickEngine::build(&inst, &sched, &profile);
        prop_assert_eq!(fenwick.total_cost(), dense.total_cost());
        prop_assert_eq!(fenwick.total_cost(), carbon_cost(&inst, &sched, &profile));
        prop_assert_eq!(fenwick.horizon(), horizon);

        for (vi, raw_start) in moves {
            let v = (vi % n) as u32;
            let len = inst.exec(v);
            let w = inst.work_power(v) as i64;
            let s = sched.start(v);
            let ns = raw_start % (horizon - len + 1);
            // Deltas agree bit-for-bit across all three backends.
            let dd = dense.shift_delta(s, len, w, ns);
            let ds = sparse.shift_delta(s, len, w, ns);
            let df = fenwick.shift_delta(s, len, w, ns);
            prop_assert_eq!(dd, ds);
            prop_assert_eq!(dd, df);
            // So do raw placement deltas over the same window.
            prop_assert_eq!(
                fenwick.place_delta(ns, len, w),
                dense.place_delta(ns, len, w)
            );
            prop_assert_eq!(
                fenwick.place_delta(ns, len, w),
                sparse.place_delta(ns, len, w)
            );
            dense.apply_shift(s, len, w, ns);
            sparse.apply_shift(s, len, w, ns);
            fenwick.apply_shift(s, len, w, ns);
            sched.set_start(v, ns);
            let oracle = carbon_cost(&inst, &sched, &profile);
            prop_assert_eq!(dense.total_cost(), oracle);
            prop_assert_eq!(sparse.total_cost(), oracle);
            prop_assert_eq!(fenwick.total_cost(), oracle);
        }
    }

    #[test]
    fn fenwick_placement_roundtrip_is_exact(
        exec in proptest::collection::vec(1u64..6, 1..5),
        powers in proptest::collection::vec((0u64..3, 1u64..10), 5),
        budgets in proptest::collection::vec(0u64..15, 1..4),
        extra in 2u64..12,
        window in (0u64..40, 1u64..10),
        delta in -20i64..20,
    ) {
        let n = exec.len();
        let inst = independent_instance(&exec, &powers[..n]);
        let horizon: Time = exec.iter().sum::<u64>() + extra;
        let profile = spread_profile(horizon, &budgets);
        let sched = Schedule::new(vec![0; n]);
        let mut fenwick = FenwickEngine::build(&inst, &sched, &profile);
        let dense = DenseGrid::build(&inst, &sched, &profile);

        let len = window.1.min(horizon);
        let start = window.0 % (horizon - len + 1);
        prop_assert_eq!(
            fenwick.place_delta(start, len, delta),
            dense.place_delta(start, len, delta)
        );
        // Apply + revert returns to the exact same total.
        let before = fenwick.total_cost();
        let d = fenwick.place_delta(start, len, delta);
        fenwick.apply_place(start, len, delta);
        prop_assert_eq!(fenwick.total_cost() as i64, before as i64 + d);
        fenwick.apply_place(start, len, -delta);
        prop_assert_eq!(fenwick.total_cost(), before);
    }
}

//! Property-based tests for the scheduling core: cost-engine
//! equivalence, bounds consistency, schedule validity of every variant,
//! and local-search monotonicity — the invariants listed in DESIGN.md §7.

// Test code may unwrap freely (policy: clippy.toml); integration-test
// crates need the explicit allow because they are not cfg(test).
#![allow(clippy::unwrap_used)]
use proptest::prelude::*;

use cawo_core::enhanced::UnitInfo;
use cawo_core::{
    carbon_cost, carbon_cost_naive, local_search, Bounds, CostEngine, DenseGrid, Instance,
    IntervalEngine, Schedule, Variant,
};
use cawo_graph::dag::DagBuilder;
use cawo_graph::NodeId;
use cawo_platform::{PowerProfile, Time};

/// A random small instance: forward-edge DAG, 1–3 units, small exec
/// times and powers.
#[derive(Debug, Clone)]
struct RawInstance {
    n: usize,
    edges: Vec<(u32, u32)>,
    exec: Vec<Time>,
    unit_of: Vec<u32>,
    units: Vec<(u64, u64)>,
}

impl RawInstance {
    fn build(&self) -> Instance {
        let mut b = DagBuilder::new(self.n);
        for &(u, v) in &self.edges {
            b.add_edge(u, v);
        }
        let units: Vec<UnitInfo> = self
            .units
            .iter()
            .map(|&(i, w)| UnitInfo {
                p_idle: i,
                p_work: w,
                is_link: false,
            })
            .collect();
        Instance::from_raw(
            b.build().unwrap(),
            self.exec.clone(),
            self.unit_of.clone(),
            units,
            0,
        )
    }
}

fn raw_instance(max_n: usize) -> impl Strategy<Value = RawInstance> {
    (2..max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as u32 - 1).prop_flat_map(move |u| (Just(u), (u + 1..n as u32))),
            0..n * 2,
        );
        let exec = proptest::collection::vec(1u64..8, n);
        let units = proptest::collection::vec((0u64..4, 1u64..12), 1..4);
        (Just(n), edges, exec, units).prop_flat_map(|(n, edges, exec, units)| {
            let k = units.len() as u32;
            let unit_of = proptest::collection::vec(0..k, n);
            (Just(n), Just(edges), Just(exec), Just(units), unit_of).prop_map(
                |(n, edges, exec, units, unit_of)| RawInstance {
                    n,
                    edges,
                    exec,
                    unit_of,
                    units,
                },
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cost_engines_agree(raw in raw_instance(10), seed in any::<u64>()) {
        let inst = raw.build();
        let asap = inst.asap_schedule();
        let makespan = asap.makespan(&inst).max(1);
        // Deterministic pseudo-random shifts within double the makespan.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let profile = PowerProfile::from_parts(
            vec![0, makespan, 2 * makespan + 1],
            vec![next() % 20, next() % 20],
        );
        // Random valid-by-construction schedule: ASAP shifted by a
        // uniform amount per topological prefix.
        let starts: Vec<Time> = (0..inst.node_count() as NodeId)
            .map(|v| asap.start(v) + (next() % (makespan + 1)))
            .collect();
        // The shift may violate precedence; instead, just use ASAP and a
        // "fully delayed" variant, both valid.
        let _ = starts;
        for sched in [asap.clone(), {
            let delay = makespan;
            Schedule::new(asap.starts().iter().map(|&s| s + delay).collect())
        }] {
            let a = carbon_cost(&inst, &sched, &profile);
            let b = carbon_cost_naive(&inst, &sched, &profile);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn grid_matches_sweep_and_deltas(raw in raw_instance(8)) {
        let inst = raw.build();
        let asap = inst.asap_schedule();
        let horizon = asap.makespan(&inst) * 2 + 4;
        let profile = PowerProfile::from_parts(
            vec![0, horizon / 2, horizon],
            vec![3, 11],
        );
        let grid = DenseGrid::new(&inst, &asap, &profile);
        prop_assert_eq!(grid.total_cost(), carbon_cost(&inst, &asap, &profile));
        // Shifting the last node anywhere ahead matches a full re-cost.
        let v = (inst.node_count() - 1) as NodeId;
        let len = inst.exec(v);
        let w = inst.work_power(v) as i64;
        let s = asap.start(v);
        for ns in s..=(horizon - len).min(s + 6) {
            let mut moved = asap.clone();
            moved.set_start(v, ns);
            let expect = carbon_cost(&inst, &moved, &profile) as i64
                - carbon_cost(&inst, &asap, &profile) as i64;
            prop_assert_eq!(grid.shift_delta(s, len, w, ns), expect);
        }
    }

    // The differential engine test: `IntervalEngine` and `DenseGrid`
    // must agree on `total_cost` and on every `shift_delta`, across
    // random instances, random (valid) schedules and random multi-
    // interval profiles — and stay in agreement through a random
    // sequence of applied shifts.
    #[test]
    fn interval_engine_matches_dense_grid(
        raw in raw_instance(9),
        budgets in proptest::collection::vec(0u64..25, 2..6),
        seed in any::<u64>(),
    ) {
        let inst = raw.build();
        let asap = inst.asap_schedule();
        let horizon = asap.makespan(&inst) * 2 + budgets.len() as u64 + 1;
        // Random interval boundaries via a deterministic LCG.
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let j = budgets.len() as u64;
        let mut bounds = vec![0 as Time];
        for k in 1..=j {
            let t = horizon * k / j;
            if t > *bounds.last().unwrap() {
                bounds.push(t);
            }
        }
        let m = bounds.len() - 1;
        let profile = PowerProfile::from_parts(bounds, budgets[..m].to_vec());

        // Start from a random valid schedule: ASAP plus a per-node slack
        // shift bounded so precedences cannot break (uniform delay).
        let delay = next() % (horizon - asap.makespan(&inst).max(1) + 1);
        let mut sched = Schedule::new(asap.starts().iter().map(|&s| s + delay).collect());

        let mut dense = DenseGrid::build(&inst, &sched, &profile);
        let mut sparse = IntervalEngine::build(&inst, &sched, &profile);
        prop_assert_eq!(dense.total_cost(), carbon_cost(&inst, &sched, &profile));
        prop_assert_eq!(sparse.total_cost(), dense.total_cost());

        // Random walk of shifts, applied to both engines in lock-step.
        let n = inst.node_count() as NodeId;
        for _ in 0..12 {
            let v = (next() % n as u64) as NodeId;
            let len = inst.exec(v);
            let w = inst.work_power(v) as i64;
            let s = sched.start(v);
            let ns = next() % (horizon - len + 1);
            prop_assert_eq!(
                dense.shift_delta(s, len, w, ns),
                sparse.shift_delta(s, len, w, ns),
                "shift {} -> {} (len {}, w {})", s, ns, len, w
            );
            dense.apply_shift(s, len, w, ns);
            sparse.apply_shift(s, len, w, ns);
            sched.set_start(v, ns);
            let sweep = carbon_cost(&inst, &sched, &profile);
            prop_assert_eq!(dense.total_cost(), sweep);
            prop_assert_eq!(sparse.total_cost(), sweep);
        }
    }

    #[test]
    fn bounds_stay_consistent_under_fixes(raw in raw_instance(10), picks in any::<u64>()) {
        let inst = raw.build();
        let deadline = inst.asap_makespan() * 2 + 3;
        let mut bounds = Bounds::new(&inst, deadline);
        prop_assert!(bounds.is_feasible(&inst));
        // Fix every node at a deterministic point of its window, in a
        // scrambled order.
        let n = inst.node_count();
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        let rot = (picks as usize) % n;
        order.rotate_left(rot);
        for &v in &order {
            prop_assert!(bounds.est(v) <= bounds.lst(v));
            let span = bounds.lst(v) - bounds.est(v);
            let s = bounds.est(v) + (picks % (span + 1));
            bounds.fix(&inst, v, s);
            prop_assert!(bounds.is_feasible(&inst));
        }
        // The fixed starts form a valid schedule.
        let sched = Schedule::new((0..n as NodeId).map(|v| bounds.est(v)).collect());
        prop_assert!(sched.validate(&inst, deadline).is_ok());
    }

    #[test]
    fn all_variants_valid_on_random_instances(
        raw in raw_instance(10),
        profile_budgets in proptest::collection::vec(0u64..30, 2..5),
    ) {
        let inst = raw.build();
        let makespan = inst.asap_makespan();
        let horizon = makespan * 2 + profile_budgets.len() as u64;
        let j = profile_budgets.len() as u64;
        let mut bounds_v = vec![0];
        for k in 1..=j {
            let t = horizon * k / j;
            if t > *bounds_v.last().unwrap() {
                bounds_v.push(t);
            }
        }
        let m = bounds_v.len() - 1;
        let profile = PowerProfile::from_parts(bounds_v, profile_budgets[..m].to_vec());
        for v in Variant::ALL {
            let sched = v.run(&inst, &profile);
            prop_assert!(sched.validate(&inst, profile.deadline()).is_ok(), "{}", v);
        }
    }

    #[test]
    fn local_search_monotone_and_valid(
        raw in raw_instance(9),
        mu in 0u64..15,
        b0 in 0u64..20,
        b1 in 0u64..20,
    ) {
        let inst = raw.build();
        let horizon = inst.asap_makespan() * 2 + 2;
        let profile =
            PowerProfile::from_parts(vec![0, horizon / 2, horizon], vec![b0, b1]);
        let mut sched = inst.asap_schedule();
        let before = carbon_cost(&inst, &sched, &profile);
        let stats = local_search(&inst, &profile, &mut sched, mu);
        let after = carbon_cost(&inst, &sched, &profile);
        prop_assert!(after <= before);
        prop_assert_eq!(before - after, stats.gain);
        prop_assert!(sched.validate(&inst, horizon).is_ok());
    }

    #[test]
    fn asap_is_earliest_schedule(raw in raw_instance(12)) {
        let inst = raw.build();
        let asap = inst.asap_schedule();
        for v in 0..inst.node_count() as NodeId {
            let est = inst
                .dag()
                .predecessors(v)
                .iter()
                .map(|&u| asap.start(u) + inst.exec(u))
                .max()
                .unwrap_or(0);
            prop_assert_eq!(asap.start(v), est);
        }
    }
}

//! Arena/zero-copy instance building: keyed interners behind
//! reference-counted handles.
//!
//! Building an [`cawo_core::Instance`] allocates the enhanced DAG,
//! execution tables and unit orders; compiling a
//! [`cawo_platform::PowerProfile`] from a measured trace parses CSV and
//! resamples thousands of points. A serving loop repeats both with
//! identical inputs on almost every query. An [`Interner`] keys the
//! built artefact by a caller-supplied content key (see
//! [`crate::key`]), hands out `Arc` clones, and only ever runs the
//! builder on the first request — the Nth instance against the same
//! cluster+trace costs one map probe and one atomic increment.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cawo_core::Instance;
use cawo_platform::PowerProfile;

/// A content-keyed pool of immutable, reference-counted values.
///
/// Thread-safe; the builder closure runs outside the lock on a miss, so
/// a slow build never blocks concurrent hits (two racing builders for
/// the same key both build, the first insert wins and both callers get
/// the same `Arc` lineage on later lookups).
#[derive(Debug)]
pub struct Interner<T> {
    map: Mutex<HashMap<u128, Arc<T>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T> Default for Interner<T> {
    fn default() -> Self {
        Interner {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<T> Interner<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Returns the pooled value for `key`, building it on first use.
    pub fn intern_with(&self, key: u128, build: impl FnOnce() -> T) -> Arc<T> {
        if let Some(hit) = self.map.lock().expect("lock poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(build());
        let mut map = self.map.lock().expect("lock poisoned");
        Arc::clone(map.entry(key).or_insert(built))
    }

    /// Looks up without building.
    pub fn get(&self, key: u128) -> Option<Arc<T>> {
        self.map
            .lock()
            .expect("lock poisoned")
            .get(&key)
            .map(Arc::clone)
    }

    /// Number of distinct pooled values.
    pub fn len(&self) -> usize {
        self.map.lock().expect("lock poisoned").len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// The two pools a serving loop needs: compiled instances (enhanced
/// DAG + tables) and compiled power profiles. Both are keyed by
/// content, so re-submitting the same workflow against the same trace
/// allocates nothing new.
#[derive(Debug, Default)]
pub struct InstancePool {
    /// Built instances keyed by workflow/cluster/mapping content.
    pub instances: Interner<Instance>,
    /// Compiled profiles keyed by scenario/trace/deadline content.
    pub profiles: Interner<PowerProfile>,
}

impl InstancePool {
    /// An empty pool pair.
    pub fn new() -> Self {
        InstancePool::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_builds_once_per_key() {
        let pool: Interner<Vec<u32>> = Interner::new();
        let mut builds = 0;
        let a = pool.intern_with(1, || {
            builds += 1;
            vec![1, 2, 3]
        });
        let b = pool.intern_with(1, || {
            builds += 1;
            vec![9, 9, 9]
        });
        assert_eq!(builds, 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.stats(), (1, 1));
        let c = pool.intern_with(2, || {
            builds += 1;
            vec![4]
        });
        assert_eq!(builds, 2);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(pool.get(2).as_deref(), Some(&vec![4]));
        assert_eq!(pool.get(3), None);
    }
}

//! Stable content hashing for cache keys.
//!
//! The solve cache is addressed by *content*, never by pointer or
//! insertion order: two `Instance`s built from the same workflow,
//! cluster and mapping hash identically, whichever session built them.
//! Keys are 128 bits from a seeded mixer ([`KeyHasher`]); every cache
//! entry additionally stores a *verify* signature computed by the same
//! absorption under independent seeds, so a (vanishingly unlikely)
//! primary-key collision is detected at lookup time instead of serving
//! a foreign result — see `SolveCache`.
//!
//! `std::hash::Hash` is deliberately not used: its output is
//! unspecified across Rust versions and randomised per process for the
//! default hasher, while these keys must be stable enough to compare
//! across runs (and, eventually, to persist under the `cawod` daemon).

use cawo_core::Instance;
use cawo_graph::NodeId;
use cawo_platform::PowerProfile;

/// A 128-bit content key: the primary cache address plus the
/// independently-seeded verify signature that guards collisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContentKey {
    /// Primary 128-bit hash (the map key).
    pub key: u128,
    /// Same content absorbed under independent seeds; compared on every
    /// lookup before an entry may be served.
    pub verify: u64,
}

/// Incremental 128-bit mixer (two 64-bit lanes with distinct odd
/// multipliers, splitmix-style finalisation). Not cryptographic — the
/// verify signature plus structural checks guard the cache against the
/// residual collision risk.
#[derive(Debug, Clone, Copy)]
pub struct KeyHasher {
    a: u64,
    b: u64,
}

const MUL_A: u64 = 0x9e37_79b9_7f4a_7c15;
const MUL_B: u64 = 0xc2b2_ae3d_27d4_eb4f;

fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl KeyHasher {
    /// A hasher over the given seed pair. Distinct seeds give
    /// statistically independent hash functions over the same content.
    pub fn seeded(seed_a: u64, seed_b: u64) -> Self {
        KeyHasher {
            a: mix(seed_a ^ MUL_A),
            b: mix(seed_b ^ MUL_B),
        }
    }

    /// The default (primary-key) seeds.
    pub fn new() -> Self {
        KeyHasher::seeded(0x5ca1_ab1e, 0xf00d_cafe)
    }

    /// Absorbs one 64-bit word into both lanes.
    pub fn write_u64(&mut self, x: u64) {
        self.a = mix(self.a ^ x).wrapping_mul(MUL_A);
        self.b = mix(self.b.rotate_left(23) ^ x).wrapping_mul(MUL_B);
    }

    /// Absorbs a byte string (length-prefixed, so `"ab" + "c"` and
    /// `"a" + "bc"` hash differently).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// Finalises to 128 bits.
    pub fn finish128(&self) -> u128 {
        ((mix(self.a) as u128) << 64) | mix(self.b) as u128
    }

    /// Finalises to 64 bits (the verify-signature width).
    pub fn finish64(&self) -> u64 {
        mix(self.a ^ self.b.rotate_left(32))
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher::new()
    }
}

/// Absorbs everything that determines an instance's solution space:
/// the communication-enhanced DAG (nodes, edges), execution times, the
/// task→unit mapping and the per-unit power figures. Two instances
/// with equal absorption are interchangeable for every solver and
/// engine in the workspace.
pub fn absorb_instance(h: &mut KeyHasher, inst: &Instance) {
    let n = inst.node_count();
    h.write_u64(n as u64);
    h.write_u64(inst.original_task_count() as u64);
    h.write_u64(inst.unit_count() as u64);
    for v in 0..n as NodeId {
        h.write_u64(inst.exec(v));
        h.write_u64(inst.unit_of(v) as u64);
    }
    for u in 0..inst.unit_count() as u32 {
        let info = inst.unit(u);
        h.write_u64(info.p_idle);
        h.write_u64(info.p_work);
        h.write_u64(info.is_link as u64);
    }
    h.write_u64(inst.dag().edge_count() as u64);
    for (u, v) in inst.dag().edges() {
        h.write_u64(((u as u64) << 32) | v as u64);
    }
}

/// Absorbs a compiled profile: interval boundaries and budgets (the
/// deadline is `boundaries.last()`, so it is covered). This is the
/// *scenario/trace fingerprint* of the cache key — two differently
/// sourced traces that compile to the same step function are the same
/// query.
pub fn absorb_profile(h: &mut KeyHasher, profile: &PowerProfile) {
    let b = profile.boundaries();
    h.write_u64(b.len() as u64);
    for &t in b {
        h.write_u64(t);
    }
    for &g in profile.budgets() {
        h.write_u64(g);
    }
}

/// Fingerprint of a profile alone (used by the profile interner).
pub fn profile_fingerprint(profile: &PowerProfile) -> u128 {
    let mut h = KeyHasher::new();
    absorb_profile(&mut h, profile);
    h.finish128()
}

/// Fingerprint of an instance alone (used by the instance interner).
pub fn instance_fingerprint(inst: &Instance) -> u128 {
    let mut h = KeyHasher::new();
    absorb_instance(&mut h, inst);
    h.finish128()
}

/// Builds the full content key of one query.
///
/// `query` labels what is being asked — solver or variant name, engine,
/// budget — while instance and profile pin what it is asked *about*.
/// The same absorption sequence runs twice under independent seeds to
/// produce the primary key and the verify signature.
pub fn query_key(inst: &Instance, profile: Option<&PowerProfile>, query: &[&str]) -> ContentKey {
    let absorb = |h: &mut KeyHasher| {
        absorb_instance(h, inst);
        match profile {
            Some(p) => {
                h.write_u64(1);
                absorb_profile(h, p);
            }
            None => h.write_u64(0),
        }
        h.write_u64(query.len() as u64);
        for part in query {
            h.write_bytes(part.as_bytes());
        }
    };
    let mut primary = KeyHasher::new();
    absorb(&mut primary);
    let mut verify = KeyHasher::seeded(0xdead_beef_0b57_ac1e, 0x0123_4567_89ab_cdef);
    absorb(&mut verify);
    ContentKey {
        key: primary.finish128(),
        verify: verify.finish64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_is_deterministic_and_order_sensitive() {
        let mut h1 = KeyHasher::new();
        h1.write_u64(1);
        h1.write_u64(2);
        let mut h2 = KeyHasher::new();
        h2.write_u64(1);
        h2.write_u64(2);
        assert_eq!(h1.finish128(), h2.finish128());
        let mut h3 = KeyHasher::new();
        h3.write_u64(2);
        h3.write_u64(1);
        assert_ne!(h1.finish128(), h3.finish128());
    }

    #[test]
    fn byte_absorption_is_prefix_free() {
        let mut h1 = KeyHasher::new();
        h1.write_bytes(b"ab");
        h1.write_bytes(b"c");
        let mut h2 = KeyHasher::new();
        h2.write_bytes(b"a");
        h2.write_bytes(b"bc");
        assert_ne!(h1.finish128(), h2.finish128());
    }

    #[test]
    fn seeds_give_independent_functions() {
        let mut h1 = KeyHasher::seeded(1, 2);
        let mut h2 = KeyHasher::seeded(3, 4);
        h1.write_u64(42);
        h2.write_u64(42);
        assert_ne!(h1.finish128(), h2.finish128());
    }

    #[test]
    fn profile_fingerprint_tracks_content() {
        let a = PowerProfile::from_parts(vec![0, 4, 8], vec![10, 6]);
        let b = PowerProfile::from_parts(vec![0, 4, 8], vec![10, 6]);
        let c = PowerProfile::from_parts(vec![0, 4, 8], vec![10, 7]);
        let d = PowerProfile::from_parts(vec![0, 5, 8], vec![10, 6]);
        assert_eq!(profile_fingerprint(&a), profile_fingerprint(&b));
        assert_ne!(profile_fingerprint(&a), profile_fingerprint(&c));
        assert_ne!(profile_fingerprint(&a), profile_fingerprint(&d));
    }
}

//! Warm-path serving layer for CaWoSched (the substrate of the
//! ROADMAP's `cawod` daemon): repeated and near-repeated queries in
//! far less than a cold solve.
//!
//! * [`key`] — stable 128-bit content hashing of instances, profiles
//!   and query labels, with an independently-seeded verify signature
//!   guarding against hash collisions,
//! * [`store`] — the [`SolveCache`]: exact-key hits, warm-state
//!   re-solves (cached incumbent + root LP basis through
//!   [`cawo_exact::WarmStart`]) and incremental trace-tail re-answers
//!   ([`cawo_core::reanswer_cost`]),
//! * [`intern`] — content-keyed interners handing out
//!   reference-counted instances and compiled profiles, so building
//!   the Nth instance against the same cluster+trace allocates almost
//!   nothing.

pub mod intern;
pub mod key;
pub mod store;

pub use intern::{InstancePool, Interner};
pub use key::{instance_fingerprint, profile_fingerprint, query_key, ContentKey, KeyHasher};
pub use store::{CacheOutcome, CacheStats, EvalAnswer, SolveCache};

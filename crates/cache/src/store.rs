//! The content-addressed solve cache.
//!
//! Three temperatures, checked in order:
//!
//! * **Hit** — the full key (instance ⊕ profile ⊕ query) is present:
//!   the stored answer is returned as-is. For solver queries that is
//!   the complete [`SolveResult`] (schedule, cost, bound, stats); for
//!   evaluation queries the variant's schedule and cost. A hit is a
//!   map probe plus a clone — sub-microsecond against a multi-
//!   millisecond cold solve.
//! * **Warm** — the *profile-independent* key matches a previous
//!   answer for the same instance and query, but the profile changed
//!   (new deadline, shifted trace tail). Solver queries re-solve
//!   seeded with the cached schedule and root basis
//!   ([`cawo_exact::WarmStart`]); evaluation queries are re-answered
//!   incrementally over the changed suffix via
//!   [`cawo_core::reanswer_cost`] when the cached schedule still fits
//!   the new horizon.
//! * **Cold** — nothing matches; solve from scratch and populate both
//!   maps.
//!
//! **Collision guard.** The primary key is a 128-bit content hash;
//! every entry also stores a second hash of the same content under
//! independent seeds ([`crate::key::ContentKey::verify`]). A lookup
//! whose primary key matches but whose verify signature does not is
//! treated as a miss (and counted in [`CacheStats::rejected`]), so two
//! colliding queries can cost a redundant solve but can never leak an
//! answer across keys.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cawo_core::{
    carbon_cost, reanswer_cost, Cost, EngineKind, Instance, RunParams, Schedule, Variant,
};
use cawo_exact::{Budget, SolveError, SolveResult, SolverKind, WarmStart};
use cawo_lp::Basis;
use cawo_platform::PowerProfile;

use crate::key::{query_key, ContentKey};

/// Where an answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheOutcome {
    /// Computed from scratch (and now cached).
    #[default]
    Cold,
    /// Served straight from the cache (exact key match).
    Hit,
    /// Recomputed from cached warm state (solver) or incrementally
    /// re-answered over the changed trace suffix (evaluation).
    Warm,
}

impl CacheOutcome {
    /// Stable lowercase label for CSV columns and reports.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Cold => "cold",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Warm => "warm",
        }
    }
}

impl std::fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Monotonic cache counters (a snapshot; see [`SolveCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact-key hits served without any solving.
    pub hits: u64,
    /// Warm-state re-solves / incremental re-answers.
    pub warm: u64,
    /// Cold solves (first sight of the query).
    pub cold: u64,
    /// Lookups rejected by the verify signature (hash collisions or
    /// corrupted entries) — served cold instead of cross-key.
    pub rejected: u64,
}

/// A cached full solver answer.
#[derive(Debug, Clone)]
struct SolveEntry {
    verify: u64,
    result: SolveResult,
}

/// Warm seed kept per (instance, query) across profiles: the last
/// schedule plus the serialized root basis (see
/// [`cawo_lp::Basis::to_bytes`] — stored as bytes so the entry is
/// inert data, deserialised only when a re-solve wants it).
#[derive(Debug, Clone)]
struct WarmSeed {
    verify: u64,
    schedule: Schedule,
    basis: Option<Vec<u8>>,
}

/// A cached evaluation: the variant's schedule and cost under the
/// profile it was computed for (kept for suffix re-pricing).
#[derive(Debug, Clone)]
struct EvalEntry {
    verify: u64,
    schedule: Arc<Schedule>,
    cost: Cost,
    profile: Arc<PowerProfile>,
}

/// Answer of a cached evaluation query.
#[derive(Debug, Clone)]
pub struct EvalAnswer {
    /// The evaluated schedule (shared with the cache).
    pub schedule: Arc<Schedule>,
    /// Its carbon cost under the queried profile.
    pub cost: Cost,
}

/// The warm-path solve cache. Thread-safe and shareable (`Arc`) across
/// grid workers; all methods take `&self`.
#[derive(Debug, Default)]
pub struct SolveCache {
    solves: Mutex<HashMap<u128, SolveEntry>>,
    warm_seeds: Mutex<HashMap<u128, WarmSeed>>,
    evals: Mutex<HashMap<u128, EvalEntry>>,
    eval_seeds: Mutex<HashMap<u128, EvalEntry>>,
    hits: AtomicU64,
    warm: AtomicU64,
    cold: AtomicU64,
    rejected: AtomicU64,
}

impl SolveCache {
    /// An empty cache.
    pub fn new() -> Self {
        SolveCache::default()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            warm: self.warm.load(Ordering::Relaxed),
            cold: self.cold.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct full-key entries (solver + evaluation).
    pub fn len(&self) -> usize {
        self.solves.lock().expect("lock poisoned").len()
            + self.evals.lock().expect("lock poisoned").len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flips the verify signature of every cached entry, making each
    /// subsequent lookup behave exactly like a primary-key collision.
    /// Test hook for the collision guard; not part of the serving API.
    #[doc(hidden)]
    pub fn corrupt_verify_for_tests(&self) {
        for e in self.solves.lock().expect("lock poisoned").values_mut() {
            e.verify ^= 1;
        }
        for e in self.warm_seeds.lock().expect("lock poisoned").values_mut() {
            e.verify ^= 1;
        }
        for e in self.evals.lock().expect("lock poisoned").values_mut() {
            e.verify ^= 1;
        }
        for e in self.eval_seeds.lock().expect("lock poisoned").values_mut() {
            e.verify ^= 1;
        }
    }

    /// Verified lookup: an entry whose verify signature disagrees with
    /// the recomputed one is a collision, never served.
    fn verified<T: Clone>(
        &self,
        map: &Mutex<HashMap<u128, T>>,
        key: ContentKey,
        verify_of: impl Fn(&T) -> u64,
    ) -> Option<T> {
        let map = map.lock().expect("lock poisoned");
        let entry = map.get(&key.key)?;
        if verify_of(entry) != key.verify {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            cawo_obs::inc(cawo_obs::Ctr::CacheRejected);
            cawo_obs::warn(
                "solve cache verify-signature mismatch — entry treated as a \
                 collision and ignored (results stay correct; hit rate drops)",
            );
            return None;
        }
        Some(entry.clone())
    }

    /// Runs (or serves) one exact-solver query through the cache.
    ///
    /// Same contract as [`cawo_exact::Solver::solve`] with the solver
    /// built via [`SolverKind::build_with_engine`]; the second tuple
    /// field reports where the answer came from. Errors are returned
    /// verbatim and never cached.
    pub fn solve(
        &self,
        kind: SolverKind,
        engine: EngineKind,
        inst: &Instance,
        profile: &PowerProfile,
        budget: Budget,
    ) -> Result<(SolveResult, CacheOutcome), SolveError> {
        let budget_tag = format!(
            "{}/{}",
            budget.node_limit,
            budget.time_limit.map_or(0, |d| d.as_millis())
        );
        let query = ["solve", kind.name(), engine.name(), &budget_tag];
        let full = query_key(inst, Some(profile), &query);
        if let Some(entry) = self.verified(&self.solves, full, |e: &SolveEntry| e.verify) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            cawo_obs::inc(cawo_obs::Ctr::CacheHit);
            return Ok((entry.result, CacheOutcome::Hit));
        }

        // Near-query: same instance and query, different profile.
        let seed_key = query_key(inst, None, &query);
        let warm = self
            .verified(&self.warm_seeds, seed_key, |e: &WarmSeed| e.verify)
            .map(|seed| WarmStart {
                incumbent: Some(seed.schedule),
                basis: seed.basis.as_deref().and_then(Basis::from_bytes),
            });

        let solver = kind.build_with_engine(engine);
        let (result, outcome) = match warm {
            Some(warm) if !warm.is_empty() => {
                let res = solver.solve_warm(inst, profile, budget, &warm)?;
                self.warm.fetch_add(1, Ordering::Relaxed);
                cawo_obs::inc(cawo_obs::Ctr::CacheWarm);
                (res, CacheOutcome::Warm)
            }
            _ => {
                let res = solver.solve(inst, profile, budget)?;
                self.cold.fetch_add(1, Ordering::Relaxed);
                cawo_obs::inc(cawo_obs::Ctr::CacheCold);
                (res, CacheOutcome::Cold)
            }
        };

        self.solves.lock().expect("lock poisoned").insert(
            full.key,
            SolveEntry {
                verify: full.verify,
                result: result.clone(),
            },
        );
        self.warm_seeds.lock().expect("lock poisoned").insert(
            seed_key.key,
            WarmSeed {
                verify: seed_key.verify,
                schedule: result.schedule.clone(),
                basis: result.basis.as_ref().map(Basis::to_bytes),
            },
        );
        Ok((result, outcome))
    }

    /// Runs (or serves) one heuristic-variant evaluation through the
    /// cache.
    ///
    /// * An exact-key hit returns the cached run bit-identically.
    /// * A profile change re-answers the *cached schedule* over the
    ///   changed trace suffix ([`cawo_core::reanswer_cost`]) when it
    ///   still fits the new horizon — the serving semantics of a
    ///   rolling-forecast daemon ("what does the plan cost now?").
    ///   Warm answers are not promoted into the exact-key map, since a
    ///   cold variant run under the new profile may choose a different
    ///   schedule.
    /// * Otherwise the variant runs cold and both maps are populated.
    pub fn evaluate(
        &self,
        variant: Variant,
        engine: EngineKind,
        inst: &Instance,
        profile: &PowerProfile,
    ) -> (EvalAnswer, CacheOutcome) {
        let query = ["eval", variant.name(), engine.name()];
        let full = query_key(inst, Some(profile), &query);
        if let Some(entry) = self.verified(&self.evals, full, |e: &EvalEntry| e.verify) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            cawo_obs::inc(cawo_obs::Ctr::CacheHit);
            return (
                EvalAnswer {
                    schedule: entry.schedule,
                    cost: entry.cost,
                },
                CacheOutcome::Hit,
            );
        }

        let seed_key = query_key(inst, None, &query);
        if let Some(seed) = self.verified(&self.eval_seeds, seed_key, |e: &EvalEntry| e.verify) {
            if let Some(cost) =
                reanswer_cost(inst, &seed.schedule, &seed.profile, seed.cost, profile)
            {
                self.warm.fetch_add(1, Ordering::Relaxed);
                cawo_obs::inc(cawo_obs::Ctr::CacheWarm);
                return (
                    EvalAnswer {
                        schedule: Arc::clone(&seed.schedule),
                        cost,
                    },
                    CacheOutcome::Warm,
                );
            }
        }

        let params = RunParams {
            engine,
            ..RunParams::default()
        };
        let schedule = Arc::new(variant.run_with(inst, profile, params));
        let cost = carbon_cost(inst, &schedule, profile);
        self.cold.fetch_add(1, Ordering::Relaxed);
        cawo_obs::inc(cawo_obs::Ctr::CacheCold);
        let entry = EvalEntry {
            verify: full.verify,
            schedule: Arc::clone(&schedule),
            cost,
            profile: Arc::new(profile.clone()),
        };
        self.evals
            .lock()
            .expect("lock poisoned")
            .insert(full.key, entry);
        self.eval_seeds.lock().expect("lock poisoned").insert(
            seed_key.key,
            EvalEntry {
                verify: seed_key.verify,
                schedule: Arc::clone(&schedule),
                cost,
                profile: Arc::new(profile.clone()),
            },
        );
        (EvalAnswer { schedule, cost }, CacheOutcome::Cold)
    }
}

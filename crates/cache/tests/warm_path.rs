//! Warm-path property suite (ISSUE 8): the serving layer may be fast,
//! but never wrong.
//!
//! * Incremental trace-tail re-answers are **bit-identical** to cold
//!   re-pricing across S1–S4 and measured-trace profiles.
//! * Cache lookups never cross distinct keys — distinct queries get
//!   distinct answers, and a simulated primary-key collision is
//!   rejected by the verify signature instead of served.
//! * Warm-started exact solves reach the same optimum as cold ones.

// Test code may unwrap freely (policy: clippy.toml); integration-test
// crates need the explicit allow because they are not cfg(test).
#![allow(clippy::unwrap_used)]
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cawo_cache::{instance_fingerprint, CacheOutcome, SolveCache};
use cawo_core::enhanced::UnitInfo;
use cawo_core::{carbon_cost, reanswer_cost, EngineKind, Instance, Variant};
use cawo_exact::{Budget, SolverKind};
use cawo_graph::dag::DagBuilder;
use cawo_platform::{
    Cluster, DeadlineFactor, PowerProfile, ProfileConfig, Scenario, TraceConfig, TraceSource,
};

/// A short inline carbon-intensity trace and a second one that differs
/// only after t = 1200 (a shifted forecast tail).
const TRACE_CSV: &str = "time,intensity\n0,420\n600,95\n1200,250\n1800,340\n";
const TRACE_CSV_TAIL: &str = "time,intensity\n0,420\n600,95\n1200,310\n1800,120\n";

/// A two-unit instance with a cross-unit edge: small enough for every
/// exact solver to exhaust, rich enough to exercise gap costs.
fn two_unit_instance() -> Instance {
    let mut b = DagBuilder::new(6);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(0, 3);
    b.add_edge(3, 4);
    b.add_edge(4, 5);
    b.add_edge(2, 5);
    let unit = |p_idle, p_work| UnitInfo {
        p_idle,
        p_work,
        is_link: false,
    };
    Instance::from_raw(
        b.build().unwrap(),
        vec![2, 3, 1, 2, 2, 2],
        vec![0, 0, 0, 1, 1, 0],
        vec![unit(1, 5), unit(2, 3)],
        0,
    )
}

/// S1–S4 at two deadlines and two seeds, plus both trace profiles: the
/// profile population the properties quantify over.
fn profile_zoo(cluster: &Cluster, asap: u64) -> Vec<(String, PowerProfile)> {
    let mut out = Vec::new();
    for scenario in Scenario::ALL {
        for factor in [DeadlineFactor::X15, DeadlineFactor::X30] {
            for seed in [7, 8] {
                out.push((
                    format!("{}/x{}/s{seed}", scenario.label(), factor.as_f64()),
                    ProfileConfig::new(scenario, factor, seed).build(cluster, asap),
                ));
            }
        }
    }
    for (name, csv) in [("trace", TRACE_CSV), ("trace-tail", TRACE_CSV_TAIL)] {
        out.push((
            name.to_string(),
            TraceConfig::new(TraceSource::Csv(csv.to_string()), DeadlineFactor::X20)
                .build(cluster, asap)
                .expect("inline trace loads"),
        ));
    }
    out
}

#[test]
fn incremental_reanswer_is_bit_identical_to_cold() {
    let inst = two_unit_instance();
    let cluster = Cluster::tiny(&[3, 5], 2);
    let zoo = profile_zoo(&cluster, inst.asap_makespan());
    let mut answered = 0usize;
    for (old_name, old) in &zoo {
        let sched = Variant::PressWRLs.run(&inst, old);
        let old_cost = carbon_cost(&inst, &sched, old);
        for (new_name, new) in &zoo {
            // The contract quantifies over arbitrary profile pairs: the
            // divergence point is found internally, whether the change
            // is a tail shift, a full reshape or no change at all.
            match reanswer_cost(&inst, &sched, old, old_cost, new) {
                Some(re) => {
                    assert_eq!(
                        re,
                        carbon_cost(&inst, &sched, new),
                        "re-answer differs from cold re-pricing ({old_name} -> {new_name})"
                    );
                    answered += 1;
                }
                None => {
                    // Only a deadline the cached schedule no longer
                    // meets may refuse an incremental answer.
                    assert!(
                        sched.makespan(&inst) > new.deadline(),
                        "refused re-answer with a fitting schedule ({old_name} -> {new_name})"
                    );
                }
            }
        }
    }
    assert!(answered > zoo.len(), "property quantified over too little");
}

#[test]
fn cache_lookups_never_cross_distinct_keys() {
    // Many small random instances behind one cache: every re-query must
    // come back as a hit carrying its own original answer.
    let mut rng = StdRng::seed_from_u64(0xCA5CADE);
    let cluster = Cluster::tiny(&[3], 2);
    let cache = SolveCache::new();
    let mut instances = Vec::new();
    for _ in 0..40 {
        let n = rng.gen_range(3..8usize);
        let mut b = DagBuilder::new(n);
        for v in 1..n {
            let u = rng.gen_range(0..v);
            b.add_edge(u as u32, v as u32);
        }
        let inst = Instance::from_raw(
            b.build().unwrap(),
            (0..n).map(|_| rng.gen_range(1..5)).collect(),
            vec![0; n],
            vec![UnitInfo {
                p_idle: rng.gen_range(1..3),
                p_work: rng.gen_range(2..6),
                is_link: false,
            }],
            0,
        );
        let profile = ProfileConfig::new(Scenario::SolarMorning, DeadlineFactor::X20, 7)
            .build(&cluster, inst.asap_makespan());
        instances.push((inst, profile));
    }
    let keys: std::collections::HashSet<u128> = instances
        .iter()
        .map(|(inst, _)| instance_fingerprint(inst))
        .collect();
    assert_eq!(keys.len(), instances.len(), "fingerprint collision");

    let engine = EngineKind::default();
    let mut first = Vec::new();
    for (inst, profile) in &instances {
        let (ans, outcome) = cache.evaluate(Variant::PressWRLs, engine, inst, profile);
        assert_eq!(outcome, CacheOutcome::Cold);
        first.push(ans.cost);
    }
    for ((inst, profile), &expected) in instances.iter().zip(&first) {
        let (ans, outcome) = cache.evaluate(Variant::PressWRLs, engine, inst, profile);
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(ans.cost, expected, "hit served a foreign answer");
        assert_eq!(ans.cost, carbon_cost(inst, &ans.schedule, profile));
    }
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.cold, stats.rejected), (40, 40, 0));
}

#[test]
fn collision_guard_rejects_instead_of_serving() {
    let inst = two_unit_instance();
    let cluster = Cluster::tiny(&[3, 5], 2);
    let profile = ProfileConfig::new(Scenario::Sinusoidal, DeadlineFactor::X20, 7)
        .build(&cluster, inst.asap_makespan());
    let cache = SolveCache::new();
    let engine = EngineKind::default();

    let (a, o1) = cache.evaluate(Variant::PressWRLs, engine, &inst, &profile);
    assert_eq!(o1, CacheOutcome::Cold);
    let (_, o2) = cache.evaluate(Variant::PressWRLs, engine, &inst, &profile);
    assert_eq!(o2, CacheOutcome::Hit);

    // Same primary key, wrong verify signature — exactly what a
    // primary-key collision looks like. Must recompute, never serve.
    cache.corrupt_verify_for_tests();
    let (b, o3) = cache.evaluate(Variant::PressWRLs, engine, &inst, &profile);
    assert_eq!(o3, CacheOutcome::Cold);
    assert_eq!(a.cost, b.cost);
    assert!(cache.stats().rejected >= 2, "eval + seed lookups rejected");
}

#[test]
fn warm_started_exact_solves_reach_the_cold_optimum() {
    let inst = two_unit_instance();
    let cluster = Cluster::tiny(&[3, 5], 2);
    let engine = EngineKind::default();
    let budget = Budget::default();
    let old = ProfileConfig::new(Scenario::SolarMorning, DeadlineFactor::X20, 7)
        .build(&cluster, inst.asap_makespan());
    let zoo = profile_zoo(&cluster, inst.asap_makespan());
    for kind in [SolverKind::Bnb, SolverKind::Milp, SolverKind::Ilp] {
        let cache = SolveCache::new();
        let (_, seed_outcome) = cache
            .solve(kind, engine, &inst, &old, budget)
            .expect("seed solve");
        assert_eq!(seed_outcome, CacheOutcome::Cold, "{kind:?}");
        for (name, profile) in &zoo {
            let cold = kind
                .build_with_engine(engine)
                .solve(&inst, profile, budget)
                .unwrap_or_else(|e| panic!("{kind:?} cold on {name}: {e}"));
            let (warmed, outcome) = cache
                .solve(kind, engine, &inst, profile, budget)
                .unwrap_or_else(|e| panic!("{kind:?} warm on {name}: {e}"));
            assert_ne!(outcome, CacheOutcome::Hit, "{kind:?} {name}: fresh profile");
            assert_eq!(cold.status, warmed.status, "{kind:?} {name}");
            assert_eq!(cold.cost, warmed.cost, "{kind:?} {name}: optimum changed");
            // And a repeat is now an exact-key hit with the same answer.
            let (hit, outcome) = cache
                .solve(kind, engine, &inst, profile, budget)
                .expect("hit");
            assert_eq!(outcome, CacheOutcome::Hit, "{kind:?} {name}");
            assert_eq!(hit.cost, warmed.cost, "{kind:?} {name}");
            assert_eq!(hit.schedule, warmed.schedule, "{kind:?} {name}");
        }
    }
}

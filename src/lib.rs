//! # cawosched — Carbon-Aware Workflow Scheduling
//!
//! Facade crate for the CaWoSched reproduction ("Carbon-Aware Workflow
//! Scheduling with Fixed Mapping and Deadline Constraint", ICPP 2025).
//! It re-exports the workspace crates under stable module names:
//!
//! * [`graph`] — DAG substrate, workflow model, synthetic generator, DOT I/O.
//! * [`platform`] — heterogeneous clusters, link processors, green-power
//!   profiles (scenarios S1–S4 plus CSV carbon-trace-driven profiles).
//! * [`heft`] — the HEFT list scheduler that produces the *fixed mapping
//!   and ordering* the carbon-aware scheduler starts from.
//! * [`core`] — the paper's contribution: communication-enhanced DAG,
//!   pluggable carbon-cost engines (dense oracle / interval-sparse),
//!   ASAP baseline, the 16 CaWoSched greedy + local-search variants.
//! * [`lp`] — the sparse bounded-variable revised-simplex LP engine
//!   (CSC matrices, presolve, LU + eta updates, warm starts) behind
//!   the paper-scale `milp`/`lp` solvers.
//! * [`exact`] — exact optimality references behind the unified
//!   `Solver` trait: uniprocessor dynamic programs, the time-indexed
//!   ILP model, branch-and-bound, the compact sparse A.4 model on
//!   [`lp`], the dense simplex/MILP oracles and the E-schedule
//!   normalisation, each selectable via `SolverKind`.
//! * [`cache`] — the warm-path serving layer: content-addressed solve
//!   cache (exact-key hits, warm-state re-solves, incremental
//!   trace-tail re-answers) and content-keyed interners for instances
//!   and compiled profiles.
//! * [`sim`] — the experiment harness reproducing every table and figure
//!   of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use cawosched::prelude::*;
//!
//! // 1. A workflow (here: a generated atacseq-like instance).
//! let wf = generate(&GeneratorConfig::new(Family::Atacseq, 60, 42));
//! // 2. A platform (a tiny cluster here; `Cluster::paper_small` for the
//! //    paper's 72-node platform) and a HEFT mapping.
//! let cluster = Cluster::tiny(&[0, 3, 5], 42);
//! let mapping = heft_schedule(&wf, &cluster);
//! // 3. The communication-enhanced instance Gc.
//! let inst = Instance::build(&wf, &cluster, &mapping);
//! // 4. A green-power profile over the ASAP-derived horizon.
//! let profile = ProfileConfig::new(Scenario::SolarMorning, DeadlineFactor::X15, 42)
//!     .build(&cluster, inst.asap_makespan());
//! // 5. Schedule carbon-aware and compare against the ASAP baseline.
//! let baseline_cost = carbon_cost(&inst, &inst.asap_schedule(), &profile);
//! let sched = Variant::PressWRLs.run(&inst, &profile);
//! assert!(carbon_cost(&inst, &sched, &profile) <= baseline_cost);
//! ```

pub use cawo_cache as cache;
pub use cawo_core as core;
pub use cawo_exact as exact;
pub use cawo_graph as graph;
pub use cawo_heft as heft;
pub use cawo_lp as lp;
pub use cawo_platform as platform;
pub use cawo_sim as sim;

/// Most-used items in one import.
pub mod prelude {
    pub use cawo_cache::{CacheOutcome, InstancePool, SolveCache};
    pub use cawo_core::{carbon_cost, Cost, EngineKind, Instance, RunParams, Schedule, Variant};
    pub use cawo_exact::{Budget, SolveStatus, Solver, SolverKind};
    pub use cawo_graph::generator::{generate, Family, GeneratorConfig};
    pub use cawo_graph::{Workflow, WorkflowBuilder};
    pub use cawo_heft::{heft_schedule, Mapping};
    pub use cawo_platform::{
        Cluster, DeadlineFactor, PowerProfile, ProfileConfig, Scenario, Time, TraceConfig,
        TraceSource,
    };
}

//! `cawosched` — command-line front end for the library.
//!
//! ```text
//! cawosched generate --family atacseq --tasks 200 --seed 7
//! cawosched schedule --dot wf.dot --variant pressWR-LS --scenario S1 \
//!                    --deadline 2 --cluster tiny --gantt
//! cawosched evaluate --dot wf.dot --scenario S3 --deadline 1.5
//! ```
//!
//! * `generate` writes a synthetic workflow (DOT) to stdout,
//! * `schedule` runs one variant and prints the start times (or a Gantt
//!   chart with `--gantt`),
//! * `evaluate` runs all 17 variants and prints a cost table.
//!
//! `schedule --cache --repeat N` exercises the warm-path serving layer:
//! the query runs N times against one [`SolveCache`], printing per-
//! iteration wall-clock and cache outcome (`cold`/`hit`) — the shape of
//! a `cawod` daemon serving repeated queries.

use std::io::Read;
use std::time::Instant;

use cawosched::graph::dot;
use cawosched::graph::wfjson::{from_wfcommons_json, WfJsonOptions};
use cawosched::prelude::*;
use cawosched::sim::report::render_gantt;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        die(USAGE);
    };
    let opts = Options::parse(&args[1..]).unwrap_or_else(|e| die(&format!("{e}\n{USAGE}")));
    init_obs(&opts);
    match cmd.as_str() {
        "generate" => generate_cmd(&opts),
        "schedule" => with_pool(&opts, || schedule_cmd(&opts)),
        "evaluate" => with_pool(&opts, || evaluate_cmd(&opts)),
        other => die(&format!("unknown command `{other}`\n{USAGE}")),
    }
    report_obs(&opts);
}

/// Applies `--log-level` / `CAWO_LOG`, then raises the level where an
/// output was requested without one: `--profile` needs Summary-level
/// counters and span histograms, `--obs-out` the Trace event timeline.
fn init_obs(o: &Options) {
    let lvl = cawo_obs::init(o.log_level.as_deref()).unwrap_or_else(|e| die(&e));
    if o.log_level.is_none() && std::env::var_os("CAWO_LOG").is_none() {
        if o.obs_out.is_some() {
            cawo_obs::set_level(cawo_obs::Level::Trace);
        } else if o.profile && lvl < cawo_obs::Level::Summary {
            cawo_obs::set_level(cawo_obs::Level::Summary);
        }
    }
}

/// Drains the observability sinks after the command finished (the pool
/// is quiescent here) and emits whatever was asked for.
fn report_obs(o: &Options) {
    if !o.profile && o.obs_out.is_none() {
        return;
    }
    let snap = cawo_obs::drain();
    if let Some(path) = &o.obs_out {
        let mut buf = Vec::new();
        cawo_obs::write_jsonl(&snap, &mut buf)
            .unwrap_or_else(|e| die(&format!("trace serialisation failed: {e}")));
        std::fs::write(path, &buf).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("observability trace written to {path}");
    }
    if o.profile {
        eprint!("{}", cawo_obs::summary_table(&snap));
    }
}

/// Runs `f` on a dedicated pool of `--threads` workers, or directly on
/// the ambient pool when no override was given. Schedules and costs
/// are bit-identical either way (docs/CONCURRENCY.md); the flag only
/// trades wall-clock against CPU use.
fn with_pool(o: &Options, f: impl FnOnce() + Send) {
    match o.threads {
        0 => f(),
        n => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("pool construction cannot fail")
            .install(f),
    }
}

const USAGE: &str = "usage:
  cawosched generate --family <atacseq|bacass|eager|methylseq> [--tasks N] [--seed N]
  cawosched schedule [--dot FILE|-] [--json FILE] [--variant NAME]
                     [--solver bnb|dp|dp-pseudo|eschedule|ilp|milp|lp|milp-dense|lp-dense]
                     [--solver-budget SPEC] [--scenario S1..S4] [--trace CSV]
                     [--deadline 1|1.5|2|3] [--cluster tiny|small|large]
                     [--engine dense|interval|fenwick] [--seed N]
                     [--threads N] [--cache] [--repeat N] [--gantt]
                     [--log-level off|summary|trace] [--profile]
                     [--obs-out trace.jsonl]
  cawosched evaluate [--dot FILE|-] [--json FILE] [--scenario S1..S4]
                     [--solver NAME[,NAME...]] [--solver-budget SPEC]
                     [--trace CSV] [--deadline ...] [--cluster ...]
                     [--engine dense|interval|fenwick] [--seed N]
                     [--threads N] [--log-level off|summary|trace]
                     [--profile] [--obs-out trace.jsonl]

  --trace replaces the synthetic S1..S4 scenario with a measured
  carbon-intensity trace (CSV rows `time,intensity`); --engine picks the
  incremental cost backend (default: interval). --solver runs an exact
  solver instead of (schedule) or after (evaluate) the heuristics;
  --solver-budget caps it with a node count, `250ms`/`2s` wall-clock,
  or both (`500000,250ms`). --threads runs solvers and heuristics on a
  dedicated pool of N workers (1 = sequential, 0 = all cores — the
  default); results are identical at any thread count. --repeat N runs
  the schedule query N times; with --cache, repeats after the first are
  served from the warm-path solve cache and each iteration reports its
  wall-clock and cache outcome. --profile prints a solve-profile
  summary (counters + span timings) to stderr after the command;
  --obs-out writes the JSONL event trace (see docs/OBSERVABILITY.md;
  obs_check validates it and converts it to a Chrome trace);
  --log-level (or the CAWO_LOG env var) sets the recording level
  explicitly.";

#[allow(clippy::exit)] // a CLI's usage/error path legitimately exits
fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

struct Options {
    family: Family,
    tasks: usize,
    seed: u64,
    dot: Option<String>,
    json: Option<String>,
    variant: Variant,
    solvers: Vec<SolverKind>,
    solver_budget: Budget,
    scenario: Scenario,
    scenario_explicit: bool,
    trace: Option<String>,
    deadline: DeadlineFactor,
    cluster: String,
    engine: EngineKind,
    gantt: bool,
    threads: usize,
    cache: bool,
    repeat: usize,
    log_level: Option<String>,
    profile: bool,
    obs_out: Option<String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            family: Family::Atacseq,
            tasks: 100,
            seed: 42,
            dot: None,
            json: None,
            variant: Variant::PressWRLs,
            solvers: Vec::new(),
            solver_budget: Budget::default(),
            scenario: Scenario::SolarMorning,
            scenario_explicit: false,
            trace: None,
            deadline: DeadlineFactor::X15,
            cluster: "tiny".to_string(),
            engine: EngineKind::default(),
            gantt: false,
            threads: 0,
            cache: false,
            repeat: 1,
            log_level: None,
            profile: false,
            obs_out: None,
        };
        let mut i = 0;
        let next = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {}", args[*i - 1]))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--family" => {
                    let v = next(&mut i)?;
                    o.family = Family::ALL
                        .into_iter()
                        .find(|f| f.name() == v)
                        .ok_or(format!("unknown family {v}"))?;
                }
                "--tasks" => o.tasks = next(&mut i)?.parse().map_err(|e| format!("{e}"))?,
                "--seed" => o.seed = next(&mut i)?.parse().map_err(|e| format!("{e}"))?,
                "--dot" => o.dot = Some(next(&mut i)?),
                "--json" => o.json = Some(next(&mut i)?),
                "--variant" => {
                    let v = next(&mut i)?;
                    o.variant = Variant::from_name(&v).ok_or(format!("unknown variant {v}"))?;
                }
                "--solver" => {
                    for name in next(&mut i)?.split(',') {
                        o.solvers.push(
                            SolverKind::parse(name.trim())
                                .ok_or(format!("unknown solver {name}"))?,
                        );
                    }
                }
                "--solver-budget" => {
                    let v = next(&mut i)?;
                    o.solver_budget = Budget::parse(&v).ok_or(format!("bad solver budget {v}"))?;
                }
                "--scenario" => {
                    let v = next(&mut i)?;
                    o.scenario = Scenario::ALL
                        .into_iter()
                        .find(|s| s.label() == v)
                        .ok_or(format!("unknown scenario {v}"))?;
                    o.scenario_explicit = true;
                }
                "--deadline" => {
                    let v = next(&mut i)?;
                    o.deadline = match v.as_str() {
                        "1" | "1.0" => DeadlineFactor::X10,
                        "1.5" => DeadlineFactor::X15,
                        "2" | "2.0" => DeadlineFactor::X20,
                        "3" | "3.0" => DeadlineFactor::X30,
                        _ => return Err(format!("unknown deadline factor {v}")),
                    };
                }
                "--trace" => o.trace = Some(next(&mut i)?),
                "--cluster" => o.cluster = next(&mut i)?,
                "--engine" => {
                    let v = next(&mut i)?;
                    o.engine = EngineKind::parse(&v).ok_or(format!("unknown engine {v}"))?;
                }
                "--gantt" => o.gantt = true,
                "--cache" => o.cache = true,
                "--repeat" => {
                    o.repeat = next(&mut i)?.parse().map_err(|e| format!("{e}"))?;
                    if o.repeat == 0 {
                        return Err("--repeat wants at least 1".to_string());
                    }
                }
                "--threads" => o.threads = next(&mut i)?.parse().map_err(|e| format!("{e}"))?,
                "--log-level" => o.log_level = Some(next(&mut i)?),
                "--profile" => o.profile = true,
                "--obs-out" => o.obs_out = Some(next(&mut i)?),
                a => return Err(format!("unknown argument {a}")),
            }
            i += 1;
        }
        if o.trace.is_some() && o.scenario_explicit {
            return Err("--trace replaces the synthetic scenario; drop --scenario".to_string());
        }
        Ok(o)
    }

    fn build_cluster(&self) -> Cluster {
        match self.cluster.as_str() {
            "tiny" => Cluster::tiny(&[0, 3, 5], self.seed),
            "small" => Cluster::paper_small(self.seed),
            "large" => Cluster::paper_large(self.seed),
            other => die(&format!("unknown cluster `{other}` (tiny|small|large)")),
        }
    }

    fn load_workflow(&self) -> Workflow {
        if let Some(path) = &self.json {
            let buf = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
            return from_wfcommons_json(&buf, WfJsonOptions::default())
                .unwrap_or_else(|e| die(&format!("bad WfCommons JSON: {e}")));
        }
        match &self.dot {
            None => generate(&GeneratorConfig::new(self.family, self.tasks, self.seed)),
            Some(path) if path == "-" => {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .unwrap_or_else(|e| die(&format!("cannot read stdin: {e}")));
                dot::from_dot(&buf).unwrap_or_else(|e| die(&format!("bad DOT: {e}")))
            }
            Some(path) => {
                let buf = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
                dot::from_dot(&buf).unwrap_or_else(|e| die(&format!("bad DOT: {e}")))
            }
        }
    }
}

fn generate_cmd(o: &Options) {
    let wf = generate(&GeneratorConfig::new(o.family, o.tasks, o.seed));
    print!("{}", dot::to_dot(&wf));
}

fn prepare(o: &Options) -> (Instance, PowerProfile, Cost) {
    let _s = cawo_obs::span("cli", "prepare");
    let wf = o.load_workflow();
    let cluster = o.build_cluster();
    let mapping = heft_schedule(&wf, &cluster);
    let inst = Instance::build(&wf, &cluster, &mapping);
    let (profile, scenario_label) = match &o.trace {
        Some(path) => {
            let cfg = TraceConfig::new(TraceSource::CsvFile(path.into()), o.deadline);
            let p = cfg
                .build(&cluster, inst.asap_makespan())
                .unwrap_or_else(|e| die(&format!("bad trace {path}: {e}")));
            (p, "trace".to_string())
        }
        None => (
            ProfileConfig::new(o.scenario, o.deadline, o.seed)
                .build(&cluster, inst.asap_makespan()),
            o.scenario.label().to_string(),
        ),
    };
    let baseline = carbon_cost(&inst, &inst.asap_schedule(), &profile);
    eprintln!(
        "instance: {} tasks ({} Gc nodes), cluster {}, {} x{}, T={}, J={}, engine {}",
        inst.original_task_count(),
        inst.node_count(),
        cluster.name(),
        scenario_label,
        o.deadline.as_f64(),
        profile.deadline(),
        profile.interval_count(),
        o.engine,
    );
    (inst, profile, baseline)
}

fn run_params(o: &Options) -> RunParams {
    RunParams {
        engine: o.engine,
        ..RunParams::default()
    }
}

fn schedule_cmd(o: &Options) {
    let (inst, profile, baseline) = prepare(o);
    if o.solvers.len() > 1 {
        die("schedule runs one solver; pass a single --solver name (evaluate accepts a list)");
    }
    // Repeated-query serving loop: with --cache, iterations after the
    // first are exact-key hits served from the cache; without it every
    // iteration computes cold (the comparison baseline).
    let cache = SolveCache::new();
    let mut answer = None;
    for it in 1..=o.repeat {
        let _s = cawo_obs::span("cli", "query");
        // cawo-lint: allow(wall-clock) — measures elapsed runtime for the
        // CLI's timing printout; never feeds schedules or costs.
        let t0 = Instant::now();
        let (label, sched, cost, outcome) = match o.solvers.first() {
            Some(&kind) => {
                let solved = if o.cache {
                    cache.solve(kind, o.engine, &inst, &profile, o.solver_budget)
                } else {
                    kind.build_with_engine(o.engine)
                        .solve(&inst, &profile, o.solver_budget)
                        .map(|res| (res, CacheOutcome::Cold))
                };
                match solved {
                    Ok((res, outcome)) => {
                        if it == 1 {
                            eprintln!(
                                "{kind}: status {}, {} nodes{}",
                                res.status,
                                res.nodes,
                                res.lower_bound
                                    .map_or(String::new(), |lb| format!(", lower bound {lb}")),
                            );
                        }
                        (kind.name(), res.schedule, res.cost, outcome)
                    }
                    Err(e) => die(&format!("solver {kind}: {e}")),
                }
            }
            None if o.cache => {
                let (ans, outcome) = cache.evaluate(o.variant, o.engine, &inst, &profile);
                (o.variant.name(), (*ans.schedule).clone(), ans.cost, outcome)
            }
            None => {
                let sched = o.variant.run_with(&inst, &profile, run_params(o));
                let cost = carbon_cost(&inst, &sched, &profile);
                (o.variant.name(), sched, cost, CacheOutcome::Cold)
            }
        };
        if o.repeat > 1 {
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            eprintln!("iter {it}: cost {cost}, {ms:.4} ms ({outcome})");
        }
        answer = Some((label, sched, cost));
    }
    let (label, sched, cost) = answer.expect("--repeat wants at least 1");
    sched
        .validate(&inst, profile.deadline())
        .unwrap_or_else(|e| die(&format!("internal error — invalid schedule: {e}")));
    eprintln!(
        "{label}: carbon cost {cost} (ASAP {baseline}, ratio {:.3})",
        cost as f64 / baseline.max(1) as f64
    );
    if o.gantt {
        print!("{}", render_gantt(&inst, &sched, &profile, 120));
    } else {
        println!("task,start,finish,unit");
        for v in 0..inst.original_task_count() as u32 {
            println!(
                "{v},{},{},{}",
                sched.start(v),
                sched.finish(v, &inst),
                inst.unit_of(v)
            );
        }
    }
}

fn evaluate_cmd(o: &Options) {
    let (inst, profile, baseline) = prepare(o);
    println!(
        "{:<14} {:>12} {:>8} {:>12}",
        "variant", "carbon_cost", "ratio", "status"
    );
    println!("{:<14} {:>12} {:>8.3}", "ASAP", baseline, 1.0);
    for v in Variant::CAWOSCHED {
        let _s = cawo_obs::span("cli", "variant");
        let sched = v.run_with(&inst, &profile, run_params(o));
        let cost = carbon_cost(&inst, &sched, &profile);
        println!(
            "{:<14} {:>12} {:>8.3}",
            v.name(),
            cost,
            cost as f64 / baseline.max(1) as f64
        );
    }
    for &kind in &o.solvers {
        let _s = cawo_obs::span("cli", "solver");
        let solver = kind.build_with_engine(o.engine);
        match solver.solve(&inst, &profile, o.solver_budget) {
            Ok(res) => println!(
                "{:<14} {:>12} {:>8.3} {:>12}",
                kind.name(),
                res.cost,
                res.cost as f64 / baseline.max(1) as f64,
                res.status.name(),
            ),
            Err(e) => {
                let label = match e {
                    cawosched::exact::SolveError::Unsupported(_) => "unsupported",
                    cawosched::exact::SolveError::Infeasible(_) => "infeasible",
                };
                println!("{:<14} {:>12} {:>8} {:>12}", kind.name(), "-", "-", label);
            }
        }
    }
}
